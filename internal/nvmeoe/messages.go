package nvmeoe

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// This file defines the typed payloads carried inside frames. They are
// hand-encoded with encoding/binary — the firmware counterpart would do the
// same; no reflection-based codec survives in a storage controller.

// FetchKind selects what a MsgFetch asks the remote store for.
type FetchKind uint8

const (
	// FetchEntries requests log entries with From <= Seq < To.
	FetchEntries FetchKind = iota + 1
	// FetchVersion requests the newest retained version of LPN written
	// before sequence Before.
	FetchVersion
	// FetchImage requests, for every LPN, the newest retained version
	// written before sequence Before (a full point-in-time image).
	FetchImage
	// FetchCheckpoint requests the newest mapping checkpoint with
	// Seq <= Before.
	FetchCheckpoint
	// FetchHead requests the remote chain state: highest contiguous
	// sequence and its chain hash (used to anchor forensic verification).
	FetchHead
)

// FetchReq is a retrieval request issued during recovery or forensics.
type FetchReq struct {
	Kind   FetchKind
	LPN    uint64
	From   uint64
	To     uint64
	Before uint64
}

// ErrBadMessage reports a payload that does not decode.
var ErrBadMessage = errors.New("nvmeoe: malformed message payload")

// Marshal encodes the request.
func (r *FetchReq) Marshal() []byte {
	b := make([]byte, 0, 1+4*8)
	b = append(b, byte(r.Kind))
	b = binary.LittleEndian.AppendUint64(b, r.LPN)
	b = binary.LittleEndian.AppendUint64(b, r.From)
	b = binary.LittleEndian.AppendUint64(b, r.To)
	b = binary.LittleEndian.AppendUint64(b, r.Before)
	return b
}

// UnmarshalFetchReq decodes a request.
func UnmarshalFetchReq(b []byte) (FetchReq, error) {
	if len(b) != 1+4*8 {
		return FetchReq{}, fmt.Errorf("%w: fetch req size %d", ErrBadMessage, len(b))
	}
	return FetchReq{
		Kind:   FetchKind(b[0]),
		LPN:    binary.LittleEndian.Uint64(b[1:]),
		From:   binary.LittleEndian.Uint64(b[9:]),
		To:     binary.LittleEndian.Uint64(b[17:]),
		Before: binary.LittleEndian.Uint64(b[25:]),
	}, nil
}

// Ack acknowledges durable receipt of segments (or checkpoints) up to and
// including sequence UpTo. The device may only release local pins for data
// covered by an ack — that ordering is what makes retention loss-free.
type Ack struct {
	UpTo uint64
}

// Marshal encodes the ack.
func (a *Ack) Marshal() []byte {
	return binary.LittleEndian.AppendUint64(nil, a.UpTo)
}

// UnmarshalAck decodes an ack.
func UnmarshalAck(b []byte) (Ack, error) {
	if len(b) != 8 {
		return Ack{}, fmt.Errorf("%w: ack size %d", ErrBadMessage, len(b))
	}
	return Ack{UpTo: binary.LittleEndian.Uint64(b)}, nil
}

// Checkpoint carries a serialized mapping snapshot: the L2P table at a
// given log sequence. Recovery starts from the newest checkpoint before
// the attack and replays forward, bounding reconstruction work.
type Checkpoint struct {
	Seq uint64
	L2P []uint64
}

// Marshal encodes the checkpoint.
func (c *Checkpoint) Marshal() []byte {
	b := make([]byte, 0, 16+8*len(c.L2P))
	b = binary.LittleEndian.AppendUint64(b, c.Seq)
	b = binary.LittleEndian.AppendUint64(b, uint64(len(c.L2P)))
	for _, v := range c.L2P {
		b = binary.LittleEndian.AppendUint64(b, v)
	}
	return b
}

// UnmarshalCheckpoint decodes a checkpoint.
func UnmarshalCheckpoint(b []byte) (Checkpoint, error) {
	if len(b) < 16 {
		return Checkpoint{}, fmt.Errorf("%w: checkpoint header", ErrBadMessage)
	}
	c := Checkpoint{Seq: binary.LittleEndian.Uint64(b)}
	n := binary.LittleEndian.Uint64(b[8:])
	if uint64(len(b)-16) != 8*n {
		return Checkpoint{}, fmt.Errorf("%w: checkpoint body %d for %d entries", ErrBadMessage, len(b)-16, n)
	}
	c.L2P = make([]uint64, n)
	for i := range c.L2P {
		c.L2P[i] = binary.LittleEndian.Uint64(b[16+8*i:])
	}
	return c, nil
}

// Head describes the remote store's view of a device's log chain.
type Head struct {
	NextSeq uint64   // one past the highest contiguous sequence stored
	Hash    [32]byte // chain hash at NextSeq-1 (zero when empty)
}

// Marshal encodes the head.
func (h *Head) Marshal() []byte {
	b := binary.LittleEndian.AppendUint64(nil, h.NextSeq)
	return append(b, h.Hash[:]...)
}

// UnmarshalHead decodes a head.
func UnmarshalHead(b []byte) (Head, error) {
	if len(b) != 8+32 {
		return Head{}, fmt.Errorf("%w: head size %d", ErrBadMessage, len(b))
	}
	var h Head
	h.NextSeq = binary.LittleEndian.Uint64(b)
	copy(h.Hash[:], b[8:])
	return h, nil
}

// ErrorMsg carries a server-side failure back to the device.
type ErrorMsg struct {
	Code uint32
	Text string
}

// Marshal encodes the error message.
func (e *ErrorMsg) Marshal() []byte {
	b := binary.LittleEndian.AppendUint32(nil, e.Code)
	return append(b, e.Text...)
}

// UnmarshalErrorMsg decodes an error message.
func UnmarshalErrorMsg(b []byte) (ErrorMsg, error) {
	if len(b) < 4 {
		return ErrorMsg{}, fmt.Errorf("%w: error msg size %d", ErrBadMessage, len(b))
	}
	return ErrorMsg{Code: binary.LittleEndian.Uint32(b), Text: string(b[4:])}, nil
}
