package nvmeoe

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// This file defines the typed payloads carried inside frames. They are
// hand-encoded with encoding/binary — the firmware counterpart would do the
// same; no reflection-based codec survives in a storage controller.

// FetchKind selects what a MsgFetch asks the remote store for.
type FetchKind uint8

const (
	// FetchEntries requests log entries with From <= Seq < To.
	FetchEntries FetchKind = iota + 1
	// FetchVersion requests the newest retained version of LPN written
	// before sequence Before.
	FetchVersion
	// FetchImage requests, for every LPN, the newest retained version
	// written before sequence Before (a full point-in-time image).
	FetchImage
	// FetchCheckpoint requests the newest mapping checkpoint with
	// Seq <= Before.
	FetchCheckpoint
	// FetchHead requests the remote chain state: highest contiguous
	// sequence and its chain hash (used to anchor forensic verification).
	FetchHead
	// FetchImageStream requests the point-in-time image as a stream of
	// LPN-ordered, codec-framed chunks (MsgFetchChunk* then MsgFetchEnd)
	// instead of one monolithic reply. From is the first LPN wanted, which
	// is how a restorer resumes an interrupted stream; ChunkPages bounds
	// pages per chunk (0 = server default).
	FetchImageStream
	// FetchRange requests, for every LPN with From <= LPN < To, the newest
	// retained version written before sequence Before — one codec-framed
	// chunk of the image, for targeted re-fetches.
	FetchRange
)

// FetchReq is a retrieval request issued during recovery or forensics.
// For the image kinds (FetchImage, FetchImageStream, FetchRange) From/To
// bound logical page numbers rather than log sequences.
type FetchReq struct {
	Kind       FetchKind
	LPN        uint64
	From       uint64
	To         uint64
	Before     uint64
	ChunkPages uint32 // FetchImageStream: pages per chunk (0 = server default)
	// Anchor, when non-zero on FetchImageStream, requests a
	// checkpoint-anchored delta image: the server streams only LPNs
	// touched by a state-changing log entry at or after this sequence.
	// Everything below the anchor is reconstructible from the device's
	// verified checkpoint + local state, so it never crosses the wire.
	Anchor uint64
	Flags  uint8
}

// Fetch request flags.
const (
	// FetchFlagDedup asks the server to serve image-stream chunks as
	// hash-reference frames (MsgFetchChunkRef): the first occurrence of
	// each content hash in the stream carries the literal page, repeats
	// carry only the 32-byte hash and resolve from the device-side cache.
	FetchFlagDedup uint8 = 1 << 0
)

// GrantQuantumBytes is the transfer quantum restore chunking targets on
// the shared-NIC QoS arbiter: one streamed chunk is one arbiter grant, so
// a ~512 KiB quantum bounds cross-class head-of-line blocking (a grant in
// flight delays a higher-priority class by at most quantum/allocation)
// without paying per-page grant accounting.
const GrantQuantumBytes = 512 << 10

// ChunkPagesForQuantum sizes FetchReq.ChunkPages so one chunk's logical
// payload lands near the grant quantum for the given page size (at least
// one page; 0 for a non-positive page size, deferring to the server
// default). With 4 KiB pages this is 128 — exactly the server's default
// chunking.
func ChunkPagesForQuantum(pageSize int) uint32 {
	if pageSize <= 0 {
		return 0
	}
	n := GrantQuantumBytes / pageSize
	if n < 1 {
		n = 1
	}
	return uint32(n)
}

// ErrBadMessage reports a payload that does not decode.
var ErrBadMessage = errors.New("nvmeoe: malformed message payload")

// fetch req sizes: the legacy encoding predates ChunkPages, the streaming
// encoding predates Anchor/Flags; all three decode.
const (
	fetchReqSizeLegacy = 1 + 4*8
	fetchReqSizeStream = fetchReqSizeLegacy + 4
	fetchReqSize       = fetchReqSizeStream + 8 + 1
)

// Marshal encodes the request.
func (r *FetchReq) Marshal() []byte {
	b := make([]byte, 0, fetchReqSize)
	b = append(b, byte(r.Kind))
	b = binary.LittleEndian.AppendUint64(b, r.LPN)
	b = binary.LittleEndian.AppendUint64(b, r.From)
	b = binary.LittleEndian.AppendUint64(b, r.To)
	b = binary.LittleEndian.AppendUint64(b, r.Before)
	b = binary.LittleEndian.AppendUint32(b, r.ChunkPages)
	b = binary.LittleEndian.AppendUint64(b, r.Anchor)
	b = append(b, r.Flags)
	return b
}

// UnmarshalFetchReq decodes a request. Requests from pre-streaming devices
// lack the ChunkPages field and decode with ChunkPages zero; pre-dedup
// requests lack Anchor/Flags and decode with both zero (full literal
// stream — the legacy behavior).
func UnmarshalFetchReq(b []byte) (FetchReq, error) {
	if len(b) != fetchReqSize && len(b) != fetchReqSizeStream && len(b) != fetchReqSizeLegacy {
		return FetchReq{}, fmt.Errorf("%w: fetch req size %d", ErrBadMessage, len(b))
	}
	r := FetchReq{
		Kind:   FetchKind(b[0]),
		LPN:    binary.LittleEndian.Uint64(b[1:]),
		From:   binary.LittleEndian.Uint64(b[9:]),
		To:     binary.LittleEndian.Uint64(b[17:]),
		Before: binary.LittleEndian.Uint64(b[25:]),
	}
	if len(b) >= fetchReqSizeStream {
		r.ChunkPages = binary.LittleEndian.Uint32(b[33:])
	}
	if len(b) == fetchReqSize {
		r.Anchor = binary.LittleEndian.Uint64(b[37:])
		r.Flags = b[45]
	}
	return r, nil
}

// StreamEnd terminates a FetchImageStream reply: how much the stream
// carried, and the first LPN past the streamed range (a resume issued with
// From = NextLPN would continue an already-complete stream with nothing).
type StreamEnd struct {
	Chunks  uint64
	Pages   uint64
	NextLPN uint64
}

// Marshal encodes the stream trailer.
func (e *StreamEnd) Marshal() []byte {
	b := make([]byte, 0, 3*8)
	b = binary.LittleEndian.AppendUint64(b, e.Chunks)
	b = binary.LittleEndian.AppendUint64(b, e.Pages)
	b = binary.LittleEndian.AppendUint64(b, e.NextLPN)
	return b
}

// UnmarshalStreamEnd decodes a stream trailer.
func UnmarshalStreamEnd(b []byte) (StreamEnd, error) {
	if len(b) != 3*8 {
		return StreamEnd{}, fmt.Errorf("%w: stream end size %d", ErrBadMessage, len(b))
	}
	return StreamEnd{
		Chunks:  binary.LittleEndian.Uint64(b),
		Pages:   binary.LittleEndian.Uint64(b[8:]),
		NextLPN: binary.LittleEndian.Uint64(b[16:]),
	}, nil
}

// Ack acknowledges durable receipt of segments (or checkpoints) up to and
// including sequence UpTo. The device may only release local pins for data
// covered by an ack — that ordering is what makes retention loss-free.
//
// SvcNs carries the storage tier's modeled service time for persisting the
// acked payload (s3sim's Put latency; zero on free local tiers), so the
// device-side ack latency model reflects the backend the server actually
// wrote to, not just the NVMe-oE wire.
type Ack struct {
	UpTo  uint64
	SvcNs uint64
}

// ack sizes: the legacy encoding predates SvcNs; both decode.
const (
	ackSizeLegacy = 8
	ackSize       = 16
)

// Marshal encodes the ack.
func (a *Ack) Marshal() []byte {
	b := make([]byte, 0, ackSize)
	b = binary.LittleEndian.AppendUint64(b, a.UpTo)
	return binary.LittleEndian.AppendUint64(b, a.SvcNs)
}

// UnmarshalAck decodes an ack. Acks from pre-tier-latency servers lack the
// SvcNs field and decode with a zero service time.
func UnmarshalAck(b []byte) (Ack, error) {
	if len(b) != ackSize && len(b) != ackSizeLegacy {
		return Ack{}, fmt.Errorf("%w: ack size %d", ErrBadMessage, len(b))
	}
	a := Ack{UpTo: binary.LittleEndian.Uint64(b)}
	if len(b) == ackSize {
		a.SvcNs = binary.LittleEndian.Uint64(b[8:])
	}
	return a, nil
}

// Checkpoint carries a serialized mapping snapshot: the L2P table at a
// given log sequence. Recovery starts from the newest checkpoint before
// the attack and replays forward, bounding reconstruction work.
type Checkpoint struct {
	Seq uint64
	L2P []uint64
}

// Marshal encodes the checkpoint.
func (c *Checkpoint) Marshal() []byte {
	b := make([]byte, 0, 16+8*len(c.L2P))
	b = binary.LittleEndian.AppendUint64(b, c.Seq)
	b = binary.LittleEndian.AppendUint64(b, uint64(len(c.L2P)))
	for _, v := range c.L2P {
		b = binary.LittleEndian.AppendUint64(b, v)
	}
	return b
}

// UnmarshalCheckpoint decodes a checkpoint.
func UnmarshalCheckpoint(b []byte) (Checkpoint, error) {
	if len(b) < 16 {
		return Checkpoint{}, fmt.Errorf("%w: checkpoint header", ErrBadMessage)
	}
	c := Checkpoint{Seq: binary.LittleEndian.Uint64(b)}
	n := binary.LittleEndian.Uint64(b[8:])
	if uint64(len(b)-16) != 8*n {
		return Checkpoint{}, fmt.Errorf("%w: checkpoint body %d for %d entries", ErrBadMessage, len(b)-16, n)
	}
	c.L2P = make([]uint64, n)
	for i := range c.L2P {
		c.L2P[i] = binary.LittleEndian.Uint64(b[16+8*i:])
	}
	return c, nil
}

// Head describes the remote store's view of a device's log chain.
type Head struct {
	NextSeq uint64   // one past the highest contiguous sequence stored
	Hash    [32]byte // chain hash at NextSeq-1 (zero when empty)
}

// Marshal encodes the head.
func (h *Head) Marshal() []byte {
	b := binary.LittleEndian.AppendUint64(nil, h.NextSeq)
	return append(b, h.Hash[:]...)
}

// UnmarshalHead decodes a head.
func UnmarshalHead(b []byte) (Head, error) {
	if len(b) != 8+32 {
		return Head{}, fmt.Errorf("%w: head size %d", ErrBadMessage, len(b))
	}
	var h Head
	h.NextSeq = binary.LittleEndian.Uint64(b)
	copy(h.Hash[:], b[8:])
	return h, nil
}

// ErrorMsg carries a server-side failure back to the device.
type ErrorMsg struct {
	Code uint32
	Text string
}

// Marshal encodes the error message.
func (e *ErrorMsg) Marshal() []byte {
	b := binary.LittleEndian.AppendUint32(nil, e.Code)
	return append(b, e.Text...)
}

// UnmarshalErrorMsg decodes an error message.
func UnmarshalErrorMsg(b []byte) (ErrorMsg, error) {
	if len(b) < 4 {
		return ErrorMsg{}, fmt.Errorf("%w: error msg size %d", ErrBadMessage, len(b))
	}
	return ErrorMsg{Code: binary.LittleEndian.Uint32(b), Text: string(b[4:])}, nil
}
