package nvmeoe

import (
	"bytes"
	"testing"

	"repro/internal/bufpool"
)

// TestAppendCodecMatchesAllocatingAPI pins the append-style entry points to
// the allocating ones: same bytes on the wire, same decode, including the
// legacy passthrough (which Append must copy, never alias).
func TestAppendCodecMatchesAllocatingAPI(t *testing.T) {
	raw := testSegment(t, make([]byte, 8192)).Marshal()
	want := EncodeSegmentBlob(raw)
	got := AppendSegmentBlob(nil, raw)
	if !bytes.Equal(got, want) {
		t.Fatal("AppendSegmentBlob differs from EncodeSegmentBlob")
	}
	// Appending after a prefix must leave the prefix alone.
	withPrefix := AppendSegmentBlob([]byte("prefix"), raw)
	if string(withPrefix[:6]) != "prefix" || !bytes.Equal(withPrefix[6:], want) {
		t.Fatal("AppendSegmentBlob corrupted prefix or body")
	}

	dec, err := AppendDecodeSegmentBlob(nil, want)
	if err != nil || !bytes.Equal(dec, raw) {
		t.Fatalf("AppendDecodeSegmentBlob: %v", err)
	}
	// Legacy bare marshal: decoded copy, not an alias.
	legacy, err := AppendDecodeSegmentBlob(nil, raw)
	if err != nil || !bytes.Equal(legacy, raw) {
		t.Fatalf("legacy decode: %v", err)
	}
	if len(legacy) > 0 && &legacy[0] == &raw[0] {
		t.Fatal("AppendDecodeSegmentBlob aliased its input")
	}
}

// TestCodecSteadyStateAllocs asserts the tentpole contract: the codec hot
// loop — deflate, inflate, blob encode, blob decode — performs zero
// allocations per operation once its pooled buffers are warm.
func TestCodecSteadyStateAllocs(t *testing.T) {
	if bufpool.RaceEnabled {
		t.Skip("race instrumentation allocates; alloc assertions run in the non-race job")
	}
	for _, tc := range []struct {
		name string
		data []byte
	}{
		// Repetitive pages: short Huffman codes, the easy case.
		{"repetitive", bytes.Repeat([]byte("hot loop page "), 512)},
		// Varied pages: dynamic-Huffman blocks with >9-bit codes — the case
		// where stdlib flate allocates link tables per block and the
		// in-house inflater must not.
		{"varied", variedPage(16 << 10)},
	} {
		t.Run(tc.name, func(t *testing.T) { codecSteadyStateAllocs(t, tc.data) })
	}
}

// variedPage builds page content with a wide, skewed byte distribution: it
// deflates well past the stored threshold but forces long dynamic-Huffman
// codes.
func variedPage(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		if i%4 == 0 {
			b[i] = byte((i * 2654435761) >> 16)
		} else {
			b[i] = byte('a' + i%29)
		}
	}
	return b
}

func codecSteadyStateAllocs(t *testing.T, data []byte) {
	seg := testSegment(t, data)
	raw := seg.Marshal()
	blob := EncodeSegmentBlob(raw)
	if Codec(blob[4]) != CodecDeflate {
		t.Fatalf("payload picked codec %v; this test wants the deflate path", Codec(blob[4]))
	}

	scratch := bufpool.Get(2 * len(raw))
	defer scratch.Release()

	if n := testing.AllocsPerRun(50, func() {
		out, ok := AppendDeflate(scratch.B[:0], raw)
		if !ok {
			t.Fatal("compressible payload did not deflate")
		}
		scratch.B = out[:0]
	}); n != 0 {
		t.Errorf("AppendDeflate: %v allocs/op, want 0", n)
	}

	comp, _ := Deflate(raw)
	if n := testing.AllocsPerRun(50, func() {
		out, err := AppendInflate(scratch.B[:0], comp)
		if err != nil {
			t.Fatal(err)
		}
		scratch.B = out[:0]
	}); n != 0 {
		t.Errorf("AppendInflate: %v allocs/op, want 0", n)
	}

	if n := testing.AllocsPerRun(50, func() {
		out := AppendSegmentBlob(scratch.B[:0], raw)
		scratch.B = out[:0]
	}); n != 0 {
		t.Errorf("AppendSegmentBlob: %v allocs/op, want 0", n)
	}

	if n := testing.AllocsPerRun(50, func() {
		out, err := AppendDecodeSegmentBlob(scratch.B[:0], blob)
		if err != nil {
			t.Fatal(err)
		}
		scratch.B = out[:0]
	}); n != 0 {
		t.Errorf("AppendDecodeSegmentBlob: %v allocs/op, want 0", n)
	}
}

func BenchmarkAppendSegmentBlob(b *testing.B) {
	seg := testSegment(b, bytes.Repeat([]byte("bench page "), 512))
	raw := seg.Marshal()
	scratch := bufpool.Get(BlobOverhead + len(raw))
	defer scratch.Release()
	b.ReportAllocs()
	b.SetBytes(int64(len(raw)))
	for i := 0; i < b.N; i++ {
		scratch.B = AppendSegmentBlob(scratch.B[:0], raw)[:0]
	}
}

func BenchmarkAppendDecodeSegmentBlob(b *testing.B) {
	seg := testSegment(b, bytes.Repeat([]byte("bench page "), 512))
	raw := seg.Marshal()
	blob := EncodeSegmentBlob(raw)
	scratch := bufpool.Get(len(raw))
	defer scratch.Release()
	b.ReportAllocs()
	b.SetBytes(int64(len(raw)))
	for i := 0; i < b.N; i++ {
		out, err := AppendDecodeSegmentBlob(scratch.B[:0], blob)
		if err != nil {
			b.Fatal(err)
		}
		scratch.B = out[:0]
	}
}
