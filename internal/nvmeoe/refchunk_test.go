package nvmeoe

import (
	"bytes"
	"crypto/sha256"
	"math/rand"
	"testing"

	"repro/internal/bufpool"
)

func makeRefPages(rng *rand.Rand, n, pageSize int) []RefPage {
	pages := make([]RefPage, 0, n)
	var lastHash [32]byte
	for i := 0; i < n; i++ {
		p := RefPage{
			LPN:      uint64(i * 3),
			WriteSeq: uint64(100 + i),
			StaleSeq: uint64(200 + i),
			Cause:    uint8(i % 3),
		}
		if i > 0 && i%3 == 2 {
			p.Ref = true
			p.Hash = lastHash
		} else {
			data := make([]byte, pageSize)
			rng.Read(data)
			p.Data = data
			p.Hash = sha256.Sum256(data)
			lastHash = p.Hash
		}
		pages = append(pages, p)
	}
	return pages
}

func TestRefChunkRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pages := makeRefPages(rng, 17, 512)
	raw := AppendRefChunk(nil, 42, pages)
	if got, want := len(raw), RefChunkWireSize(pages); got != want {
		t.Fatalf("wire size mismatch: encoded %d, predicted %d", got, want)
	}
	if !IsRefChunk(raw) {
		t.Fatal("IsRefChunk = false on an encoded chunk")
	}
	var got []RefPage
	dev, err := WalkRefChunk(raw, func(p RefPage) error {
		got = append(got, p)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if dev != 42 {
		t.Fatalf("device id %d, want 42", dev)
	}
	if len(got) != len(pages) {
		t.Fatalf("decoded %d pages, want %d", len(got), len(pages))
	}
	for i := range pages {
		w, g := pages[i], got[i]
		if g.LPN != w.LPN || g.WriteSeq != w.WriteSeq || g.StaleSeq != w.StaleSeq ||
			g.Cause != w.Cause || g.Ref != w.Ref || g.Hash != w.Hash {
			t.Fatalf("page %d header mismatch: %+v != %+v", i, g, w)
		}
		if !bytes.Equal(g.Data, w.Data) {
			t.Fatalf("page %d payload mismatch", i)
		}
	}
}

func TestRefChunkRejectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pages := makeRefPages(rng, 4, 128)
	raw := AppendRefChunk(nil, 1, pages)
	nop := func(RefPage) error { return nil }
	if _, err := WalkRefChunk(raw[:len(raw)-1], nop); err == nil {
		t.Fatal("truncated chunk decoded")
	}
	if _, err := WalkRefChunk(raw[:refChunkHeaderSize-2], nop); err == nil {
		t.Fatal("truncated header decoded")
	}
	bad := append([]byte(nil), raw...)
	bad[0] ^= 0xff
	if _, err := WalkRefChunk(bad, nop); err == nil {
		t.Fatal("bad magic decoded")
	}
	if _, err := WalkRefChunk(append(append([]byte(nil), raw...), 0), nop); err == nil {
		t.Fatal("trailing bytes decoded")
	}
}

func TestFetchReqAnchorCompat(t *testing.T) {
	req := FetchReq{
		Kind: FetchImageStream, From: 5, To: 9, Before: 77,
		ChunkPages: 32, Anchor: 61, Flags: FetchFlagDedup,
	}
	b := req.Marshal()
	if len(b) != fetchReqSize {
		t.Fatalf("marshal size %d, want %d", len(b), fetchReqSize)
	}
	got, err := UnmarshalFetchReq(b)
	if err != nil {
		t.Fatal(err)
	}
	if got != req {
		t.Fatalf("round trip mismatch: %+v != %+v", got, req)
	}
	// Pre-dedup stream encoding: Anchor/Flags absent, decode zero.
	got, err = UnmarshalFetchReq(b[:fetchReqSizeStream])
	if err != nil {
		t.Fatal(err)
	}
	if got.Anchor != 0 || got.Flags != 0 || got.ChunkPages != 32 {
		t.Fatalf("stream-size decode: %+v", got)
	}
	// Legacy encoding: ChunkPages absent too.
	got, err = UnmarshalFetchReq(b[:fetchReqSizeLegacy])
	if err != nil {
		t.Fatal(err)
	}
	if got.ChunkPages != 0 || got.Before != 77 {
		t.Fatalf("legacy-size decode: %+v", got)
	}
}

// TestRefChunkSteadyStateAllocs gates the dedup encode hot path: building
// a hash-reference chunk into pooled buffers and wrapping it in the
// segment-blob codec must not allocate once pools are warm.
func TestRefChunkSteadyStateAllocs(t *testing.T) {
	if bufpool.RaceEnabled {
		t.Skip("race instrumentation allocates; alloc assertions run in the non-race job")
	}
	rng := rand.New(rand.NewSource(11))
	pages := makeRefPages(rng, 64, 4096)
	encode := func() {
		raw := bufpool.Get(RefChunkWireSize(pages))
		raw.B = AppendRefChunk(raw.B, 3, pages)
		blob := bufpool.Get(BlobOverhead + len(raw.B))
		blob.B = AppendSegmentBlob(blob.B, raw.B)
		blob.Release()
		raw.Release()
	}
	encode() // warm the pools
	allocs := testing.AllocsPerRun(50, encode)
	if allocs != 0 {
		t.Fatalf("dedup encode path allocates %.1f/op; want 0", allocs)
	}
}

func BenchmarkAppendRefChunk(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	pages := makeRefPages(rng, 64, 4096)
	buf := bufpool.Get(RefChunkWireSize(pages))
	defer buf.Release()
	b.SetBytes(int64(RefChunkWireSize(pages)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf.B = AppendRefChunk(buf.B[:0], 3, pages)
	}
}
