package nvmeoe

import (
	"encoding/binary"
	"fmt"
)

// RefChunk is the dedup restore wire format: one MsgFetchChunkRef frame
// carries a run of LPN-ordered page versions where each page is either a
// literal (full payload, first occurrence of its content hash in the
// stream) or a hash reference (32-byte content hash only; the device
// resolves it from the literals it has already cached this restore). The
// server guarantees every referenced hash was sent as a literal earlier in
// the same stream session, so a resolve miss is a protocol error, not a
// cache-sizing problem. The raw chunk is wrapped in the segment-blob codec
// before framing so literal payloads still compress.
//
// Layout (little-endian):
//
//	magic   u32  "RSSH"
//	device  u64
//	count   u32
//	count × page:
//	  lpn      u64
//	  writeSeq u64
//	  staleSeq u64
//	  cause    u8
//	  flags    u8   bit0 = hash reference (no payload)
//	  hash     [32]byte
//	  dataLen  u32  (0 for references)
//	  data     [dataLen]byte
const refChunkMagic = 0x48535352 // "RSSH"

const (
	refChunkHeaderSize = 4 + 8 + 4
	refPageFixedSize   = 8 + 8 + 8 + 1 + 1 + 32 + 4
	refPageFlagRef     = uint8(1 << 0)
)

// RefPage is one page of a RefChunk. It mirrors oplog.PageRecord but stays
// wire-local: this package does not import oplog, so the server and device
// convert at the boundary.
type RefPage struct {
	LPN      uint64
	WriteSeq uint64
	StaleSeq uint64
	Cause    uint8
	Ref      bool   // true: Data omitted on the wire; resolve Hash device-side
	Hash     [32]byte
	Data     []byte // literal payload; nil when Ref
}

// RefChunkWireSize returns exactly len(AppendRefChunk(nil, ...)); the
// server uses it to size pooled encode buffers.
func RefChunkWireSize(pages []RefPage) int {
	size := refChunkHeaderSize + len(pages)*refPageFixedSize
	for i := range pages {
		if !pages[i].Ref {
			size += len(pages[i].Data)
		}
	}
	return size
}

// AppendRefChunk appends the serialized chunk to dst and returns the
// extended slice. With a pooled buffer of capacity RefChunkWireSize it
// allocates nothing — the dedup encode hot loop's contract.
func AppendRefChunk(dst []byte, deviceID uint64, pages []RefPage) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, refChunkMagic)
	dst = binary.LittleEndian.AppendUint64(dst, deviceID)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(pages)))
	for i := range pages {
		p := &pages[i]
		dst = binary.LittleEndian.AppendUint64(dst, p.LPN)
		dst = binary.LittleEndian.AppendUint64(dst, p.WriteSeq)
		dst = binary.LittleEndian.AppendUint64(dst, p.StaleSeq)
		dst = append(dst, p.Cause)
		var flags uint8
		if p.Ref {
			flags |= refPageFlagRef
		}
		dst = append(dst, flags)
		dst = append(dst, p.Hash[:]...)
		if p.Ref {
			dst = binary.LittleEndian.AppendUint32(dst, 0)
			continue
		}
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(p.Data)))
		dst = append(dst, p.Data...)
	}
	return dst
}

// IsRefChunk reports whether b starts with the ref-chunk magic.
func IsRefChunk(b []byte) bool {
	return len(b) >= 4 && binary.LittleEndian.Uint32(b) == refChunkMagic
}

// WalkRefChunk decodes a serialized RefChunk, invoking fn once per page in
// stream order. Literal Data slices alias b — callers that retain a page
// past the walk must copy. Returns the encoding device ID.
func WalkRefChunk(b []byte, fn func(p RefPage) error) (deviceID uint64, err error) {
	if len(b) < refChunkHeaderSize {
		return 0, fmt.Errorf("%w: ref chunk header %d bytes", ErrBadMessage, len(b))
	}
	if binary.LittleEndian.Uint32(b) != refChunkMagic {
		return 0, fmt.Errorf("%w: bad ref chunk magic", ErrBadMessage)
	}
	deviceID = binary.LittleEndian.Uint64(b[4:])
	count := int(binary.LittleEndian.Uint32(b[12:]))
	off := refChunkHeaderSize
	for i := 0; i < count; i++ {
		if len(b)-off < refPageFixedSize {
			return deviceID, fmt.Errorf("%w: ref chunk truncated at page %d", ErrBadMessage, i)
		}
		var p RefPage
		p.LPN = binary.LittleEndian.Uint64(b[off:])
		p.WriteSeq = binary.LittleEndian.Uint64(b[off+8:])
		p.StaleSeq = binary.LittleEndian.Uint64(b[off+16:])
		p.Cause = b[off+24]
		flags := b[off+25]
		copy(p.Hash[:], b[off+26:off+58])
		dataLen := int(binary.LittleEndian.Uint32(b[off+58:]))
		off += refPageFixedSize
		p.Ref = flags&refPageFlagRef != 0
		if p.Ref {
			if dataLen != 0 {
				return deviceID, fmt.Errorf("%w: ref page %d carries %d payload bytes", ErrBadMessage, i, dataLen)
			}
		} else {
			if len(b)-off < dataLen {
				return deviceID, fmt.Errorf("%w: ref chunk payload truncated at page %d", ErrBadMessage, i)
			}
			p.Data = b[off : off+dataLen : off+dataLen]
			off += dataLen
		}
		if err := fn(p); err != nil {
			return deviceID, err
		}
	}
	if off != len(b) {
		return deviceID, fmt.Errorf("%w: %d trailing bytes after ref chunk", ErrBadMessage, len(b)-off)
	}
	return deviceID, nil
}
