package nvmeoe

import (
	"bufio"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
)

// The handshake authenticates both ends with a pre-shared key provisioned
// into the SSD controller at manufacturing/enrollment time (the paper's
// trust anchor: the firmware and its embedded secrets are the TCB). It is
// a simple challenge–response:
//
//	device -> server: HELLO  { deviceID, nonceC }
//	server -> device: ACK    { nonceS, HMAC(psk, "srv"|deviceID|nonceC|nonceS) }
//	device -> server: CONFIRM{ HMAC(psk, "dev"|deviceID|nonceC|nonceS) }
//
// after which both sides derive direction-separated encryption and MAC
// keys bound to the nonces. A host-resident attacker without the PSK can
// neither impersonate the device (to poison the remote log) nor the server
// (to black-hole offloads while acking them).

const nonceSize = 16

var (
	// ErrHandshake is returned when the peer fails authentication.
	ErrHandshake = errors.New("nvmeoe: handshake authentication failed")
)

func authTag(psk []byte, label string, deviceID uint64, nonceC, nonceS []byte) []byte {
	mac := hmac.New(sha256.New, psk)
	mac.Write([]byte(label))
	var id [8]byte
	binary.LittleEndian.PutUint64(id[:], deviceID)
	mac.Write(id[:])
	mac.Write(nonceC)
	mac.Write(nonceS)
	return mac.Sum(nil)
}

func newSessionConn(nc net.Conn, psk []byte, nonceC, nonceS []byte, isDevice bool) *Conn {
	c := &Conn{nc: nc, br: bufio.NewReaderSize(nc, 1<<16)}
	c2sEnc := deriveKey(psk, nonceC, nonceS, dirDeviceToServer+"-enc")
	c2sMac := deriveKey(psk, nonceC, nonceS, dirDeviceToServer+"-mac")
	s2cEnc := deriveKey(psk, nonceC, nonceS, dirServerToDevice+"-enc")
	s2cMac := deriveKey(psk, nonceC, nonceS, dirServerToDevice+"-mac")
	if isDevice {
		c.out = halfConn{encKey: c2sEnc, macKey: c2sMac}
		c.in = halfConn{encKey: s2cEnc, macKey: s2cMac}
	} else {
		c.out = halfConn{encKey: s2cEnc, macKey: s2cMac}
		c.in = halfConn{encKey: c2sEnc, macKey: c2sMac}
	}
	return c
}

// DeviceHandshake runs the device side of the handshake over nc and
// returns an authenticated session.
func DeviceHandshake(nc net.Conn, psk []byte, deviceID uint64) (*Conn, error) {
	nonceC := make([]byte, nonceSize)
	if _, err := rand.Read(nonceC); err != nil {
		return nil, err
	}
	hello := make([]byte, 8+nonceSize)
	binary.LittleEndian.PutUint64(hello, deviceID)
	copy(hello[8:], nonceC)
	if err := writeRaw(nc, hello); err != nil {
		return nil, err
	}
	ack, err := readRaw(nc, nonceSize+sha256.Size)
	if err != nil {
		return nil, err
	}
	nonceS, srvTag := ack[:nonceSize], ack[nonceSize:]
	if !hmac.Equal(srvTag, authTag(psk, "srv", deviceID, nonceC, nonceS)) {
		return nil, fmt.Errorf("%w: server tag invalid", ErrHandshake)
	}
	if err := writeRaw(nc, authTag(psk, "dev", deviceID, nonceC, nonceS)); err != nil {
		return nil, err
	}
	return newSessionConn(nc, psk, nonceC, nonceS, true), nil
}

// ServerHandshake runs the server side, returning the session and the
// authenticated device ID. lookupPSK maps a device ID to its enrolled key,
// so one server can serve many devices.
func ServerHandshake(nc net.Conn, lookupPSK func(deviceID uint64) ([]byte, bool)) (*Conn, uint64, error) {
	hello, err := readRaw(nc, 8+nonceSize)
	if err != nil {
		return nil, 0, err
	}
	deviceID := binary.LittleEndian.Uint64(hello)
	nonceC := hello[8:]
	psk, ok := lookupPSK(deviceID)
	if !ok {
		return nil, 0, fmt.Errorf("%w: unknown device %d", ErrHandshake, deviceID)
	}
	nonceS := make([]byte, nonceSize)
	if _, err := rand.Read(nonceS); err != nil {
		return nil, 0, err
	}
	ack := append(append([]byte(nil), nonceS...), authTag(psk, "srv", deviceID, nonceC, nonceS)...)
	if err := writeRaw(nc, ack); err != nil {
		return nil, 0, err
	}
	devTag, err := readRaw(nc, sha256.Size)
	if err != nil {
		return nil, 0, err
	}
	if !hmac.Equal(devTag, authTag(psk, "dev", deviceID, nonceC, nonceS)) {
		return nil, 0, fmt.Errorf("%w: device tag invalid", ErrHandshake)
	}
	return newSessionConn(nc, psk, nonceC, nonceS, false), deviceID, nil
}

// writeRaw sends a length-prefixed plaintext handshake record.
func writeRaw(nc net.Conn, p []byte) error {
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(p)))
	if _, err := nc.Write(lenBuf[:]); err != nil {
		return err
	}
	_, err := nc.Write(p)
	return err
}

// readRaw receives a length-prefixed handshake record and checks its size.
func readRaw(nc net.Conn, want int) ([]byte, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(nc, lenBuf[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(lenBuf[:])
	if int(n) != want {
		return nil, fmt.Errorf("%w: record size %d, want %d", ErrHandshake, n, want)
	}
	p := make([]byte, n)
	if _, err := io.ReadFull(nc, p); err != nil {
		return nil, err
	}
	return p, nil
}
