// Package batch defines the wire types of the batched datapath: the
// submission-batch operations and completions every layer of the stack
// (host filesystem, NVMe controller, RSSD core, bare FTL) exchanges.
//
// The paper's prototype gets its performance from device-level parallelism
// — multiple NAND channels, a deep NVMe queue — which a strictly per-op
// interface can never express: each call completes before the next is
// issued, so the device sees a queue depth of one. An Op slice is the host
// handing the device a whole submission window at once; the device is free
// to schedule it across channels and amortize per-op costs (locking, log
// sealing, retention checks) over the batch.
//
// The package sits below every other layer (it depends only on simclock)
// so that devices (internal/ftl, internal/core) and consumers
// (internal/host, internal/nvme, internal/experiment) can share the types
// without import cycles.
package batch

import "repro/internal/simclock"

// Kind enumerates batched block operations.
type Kind uint8

// Batched operation kinds.
const (
	OpWrite Kind = iota + 1
	OpRead
	OpTrim
)

// Op is one page-granular operation within a submission batch.
type Op struct {
	Kind Kind
	LPN  uint64
	Data []byte // write payload (exactly one page); nil for reads/trims
}

// Result is the completion for one Op, aligned by index.
type Result struct {
	Data []byte        // read payload
	Done simclock.Time // simulated completion time of this operation
	Err  error         // per-op failure (bad size, out of range); nil on success
}

// Device accepts submission batches. SubmitBatch applies ops in submission
// order with respect to state (a read after a write to the same page sees
// the new data) while letting the device overlap operations on independent
// hardware resources. It returns per-op results, the completion time of
// the whole batch, and a batch-level error for failures that abort the
// remainder of the batch (device full, I/O error); per-op validation
// failures land in the matching Result instead and do not stop the batch.
type Device interface {
	SubmitBatch(ops []Op, at simclock.Time) ([]Result, simclock.Time, error)
}

// ForEachRun segments ops into maximal runs of the same kind and calls fn
// for each, in order, stopping at the first error. Devices use it to
// dispatch a mixed batch kind by kind while keeping state changes in
// submission order.
func ForEachRun(ops []Op, fn func(start, end int, kind Kind) error) error {
	for start := 0; start < len(ops); {
		end := start + 1
		for end < len(ops) && ops[end].Kind == ops[start].Kind {
			end++
		}
		if err := fn(start, end, ops[start].Kind); err != nil {
			return err
		}
		start = end
	}
	return nil
}

// SubmitOne adapts a single per-op call onto a Device: the per-op methods
// of batch-capable devices are thin wrappers over one-element batches, and
// this helper is that wrapper.
func SubmitOne(dev Device, op Op, at simclock.Time) (Result, simclock.Time, error) {
	res, done, err := dev.SubmitBatch([]Op{op}, at)
	if err != nil {
		return Result{Done: at, Err: err}, done, err
	}
	return res[0], done, nil
}
