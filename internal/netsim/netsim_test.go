package netsim

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/simclock"
)

// TestLegacyEquivalence: an uncontended grant must be bit-identical to
// the legacy link formulas this arbiter replaced — RecoveryLink.ChunkTime
// (share in the numerator) and the engine's xferDur (share 1) — so the
// delegation shims cannot drift.
func TestLegacyEquivalence(t *testing.T) {
	a := New(Config{MBps: 1000, RTT: simclock.Microsecond})
	bytes := 1_000_000
	legacy := func(share int) simclock.Duration {
		return simclock.Microsecond +
			simclock.Duration(float64(bytes)*float64(share)/(1000*1e6)*float64(simclock.Second))
	}
	if got := a.GrantClass(ClassRestore, bytes); got != legacy(1) {
		t.Fatalf("solo class grant = %v, want %v", got, legacy(1))
	}
	f1 := a.Open(ClassRestore, 1)
	f2 := a.Open(ClassRestore, 1)
	f3 := a.Open(ClassRestore, 1)
	if got := a.GrantClass(ClassRestore, bytes); got != legacy(3) {
		t.Fatalf("3-way class grant = %v, want %v", got, legacy(3))
	}
	if got := f1.GrantDur(bytes); got != legacy(3) {
		t.Fatalf("3-way flow grant = %v, want %v", got, legacy(3))
	}
	f2.Close()
	f2.Close() // idempotent
	f3.Close()
	if got := f1.GrantDur(bytes); got != legacy(1) {
		t.Fatalf("share not returned on close: %v", got)
	}
	f1.Close()
	// A lone offload flow on a private arbiter prices exactly like the
	// engine's old dedicated link: no other class active, full line.
	b := New(Config{MBps: 1200, RTT: 30 * simclock.Microsecond})
	fo := b.Open(ClassOffload, 1)
	want := 30*simclock.Microsecond +
		simclock.Duration(float64(bytes)/(1200*1e6)*float64(simclock.Second))
	if got := fo.GrantDur(bytes); got != want {
		t.Fatalf("solo offload grant = %v, want xferDur %v", got, want)
	}
	fo.Close()
}

// TestStrictPriorityFloors: with all three classes active the allocations
// are (1 - floors) / floor(offload) / floor(lifecycle) of line, and they
// sum to exactly the line rate.
func TestStrictPriorityFloors(t *testing.T) {
	a := New(Config{MBps: 1000, RTT: simclock.Microsecond})
	fr := a.Open(ClassRestore, 1)
	fo := a.Open(ClassOffload, 1)
	fl := a.Open(ClassLifecycle, 1)
	defer fr.Close()
	defer fo.Close()
	defer fl.Close()

	a.mu.Lock()
	ar := a.classAllocLocked(ClassRestore)
	ao := a.classAllocLocked(ClassOffload)
	al := a.classAllocLocked(ClassLifecycle)
	a.mu.Unlock()
	within := func(got, want float64) bool { return got > want*0.999 && got < want*1.001 }
	if !within(ar, 850) || !within(ao, 100) || !within(al, 50) {
		t.Fatalf("allocs = %.1f/%.1f/%.1f, want 850/100/50", ar, ao, al)
	}
	if sum := ar + ao + al; sum > 1000*1.0000001 {
		t.Fatalf("allocations overcommit the line: %.3f", sum)
	}

	// Restore-only demand still gets the full line (no reservation for
	// inactive classes), and offload alone gets the full line too.
	fo.Close()
	fl.Close()
	a.mu.Lock()
	solo := a.classAllocLocked(ClassRestore)
	a.mu.Unlock()
	if solo != 1000 {
		t.Fatalf("solo restore alloc = %.1f, want full line", solo)
	}
}

// TestFIFOBaseline: with classing disabled, a restore flow competing with
// 9 other flows gets 1/10 of the line no matter its class — the
// no-priority trampling the QoS experiment quantifies.
func TestFIFOBaseline(t *testing.T) {
	a := New(Config{MBps: 1000, RTT: simclock.Microsecond, FIFO: true})
	fr := a.Open(ClassRestore, 1)
	for i := 0; i < 6; i++ {
		defer a.Open(ClassOffload, 1).Close()
	}
	for i := 0; i < 3; i++ {
		defer a.Open(ClassLifecycle, 1).Close()
	}
	bytes := 1_000_000
	want := simclock.Microsecond +
		simclock.Duration(float64(bytes)*10/(1000*1e6)*float64(simclock.Second))
	if got := fr.GrantDur(bytes); got != want {
		t.Fatalf("fifo 10-way grant = %v, want %v", got, want)
	}
	fr.Close()
	if st := a.ClassStats(ClassRestore); st.Throttled != 1 {
		t.Fatalf("fifo cross-class grant not counted throttled: %+v", st)
	}
}

// grantEvent is one reconstructed grant interval for the conservation
// sweep: the transfer occupies [start, done] at `rate` bytes/sec.
type grantEvent struct {
	start, done simclock.Time
	rate        float64
}

// TestConservationAndStarvationProperty is the property-style invariant
// check: random interleavings of 3-class demand over a fixed flow
// population must (a) never have instantaneous granted rate exceeding the
// line at any point of the timeline, and (b) never hold a lifecycle grant
// past its burst window — RTT plus the bytes served at the lifecycle
// floor (its guaranteed worst case). Runs under -race in CI.
func TestConservationAndStarvationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(0x90D0))
	const line = 2000.0
	rtt := 10 * simclock.Microsecond
	for round := 0; round < 20; round++ {
		a := New(Config{MBps: line, RTT: rtt})
		type openFlow struct {
			f   *Flow
			now simclock.Time
		}
		var flows []*openFlow
		counts := [NumClasses]int{1 + rng.Intn(4), 1 + rng.Intn(4), 1 + rng.Intn(3)}
		for c := Class(0); c < NumClasses; c++ {
			for i := 0; i < counts[c]; i++ {
				flows = append(flows, &openFlow{f: a.Open(c, 1)})
			}
		}
		var events []grantEvent
		var lifecycleGrants int
		floors := a.Floors()
		for g := 0; g < 200; g++ {
			of := flows[rng.Intn(len(flows))]
			bytes := 64<<10 + rng.Intn(1<<20)
			start := of.now
			done := of.f.Grant(bytes, start)
			dur := done.Sub(start)
			of.now = done
			if xfer := dur - rtt; xfer > 0 {
				events = append(events, grantEvent{start, done, float64(bytes) / xfer.Seconds()})
			}
			if of.f.Class() == ClassLifecycle {
				lifecycleGrants++
				// Non-starvation: the floor bounds the burst window even
				// with every class contending. share <= open lifecycle
				// flows; allocation >= floor * line.
				worst := rtt + simclock.Duration(
					float64(bytes)*float64(counts[ClassLifecycle])/
						(floors[ClassLifecycle]*line*1e6)*float64(simclock.Second))
				if dur > worst+worst/100 {
					t.Fatalf("round %d: lifecycle grant %v exceeds burst window %v", round, dur, worst)
				}
			}
		}
		if lifecycleGrants == 0 {
			continue // this round never touched lifecycle; population guarantees most do
		}
		// Sweep every interval boundary: the instantaneous sum of granted
		// rates must conserve the line. (Population is fixed for the whole
		// round, so every grant was priced against full knowledge of its
		// competitors — the model must never overcommit.)
		for _, e := range events {
			var sum float64
			for _, o := range events {
				if o.start <= e.start && e.start < o.done {
					sum += o.rate
				}
			}
			if sum > line*1e6*1.0001 {
				t.Fatalf("round %d: instantaneous rate %.0f exceeds line %.0f B/s", round, sum, line*1e6)
			}
		}
		total, span, mbps := a.Conservation()
		if total == 0 || span <= 0 {
			t.Fatalf("round %d: empty conservation ledger (%d bytes, %v)", round, total, span)
		}
		if mbps > line*1.0001 {
			t.Fatalf("round %d: aggregate %.1f MBps exceeds line %.0f", round, mbps, line)
		}
		for _, of := range flows {
			of.f.Close()
		}
	}
}

// TestConcurrentGrants drives open/grant/close from many goroutines so
// the race job exercises the arbiter's locking, then checks the ledger
// balanced.
func TestConcurrentGrants(t *testing.T) {
	a := New(Config{})
	var wg sync.WaitGroup
	const workers, grants = 8, 50
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			f := a.Open(Class(w%int(NumClasses)), 1)
			defer f.Close()
			now := simclock.Time(0)
			for i := 0; i < grants; i++ {
				now = f.Grant(4096, now)
			}
		}(w)
	}
	wg.Wait()
	var got uint64
	for _, st := range a.Stats() {
		got += st.BytesGranted
	}
	if want := uint64(workers * grants * 4096); got != want {
		t.Fatalf("ledger bytes = %d, want %d", got, want)
	}
	for c := Class(0); c < NumClasses; c++ {
		if a.ActiveFlows(c) != 0 {
			t.Fatalf("class %v still has open flows", c)
		}
	}
}

// TestParseFloors covers the -qosfloors flag syntax.
func TestParseFloors(t *testing.T) {
	got, err := ParseFloors("0.2, 0.1")
	if err != nil || got[ClassOffload] != 0.2 || got[ClassLifecycle] != 0.1 || got[ClassRestore] != 0 {
		t.Fatalf("ParseFloors = %v, %v", got, err)
	}
	for _, bad := range []string{"", "0.1", "0.1,0.2,0.3", "x,0.1", "0.6,0.1", "0.3,0.25", "-0.1,0.1"} {
		if _, err := ParseFloors(bad); err == nil {
			t.Fatalf("ParseFloors(%q) accepted", bad)
		}
	}
}
