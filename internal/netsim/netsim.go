// Package netsim models the one resource every remote interaction in this
// system ultimately fights over: the storage server's NIC. Before it
// existed the simulation priced three kinds of traffic on three
// disconnected links — remote.RecoveryLink fair-shared restore streams
// among themselves, the offload engine charged a private per-device
// NVMe-oE link, and lifecycle/tiering transfers were not modeled at all —
// so a fleet-wide restore wave and steady-state offload never contended
// and the published RTO numbers were optimistic.
//
// The Arbiter is a single shared-NIC scheduler with three traffic
// classes, in strict priority order:
//
//	ClassRestore   > ClassOffload > ClassLifecycle
//
// Admission is strict priority with guaranteed floors: a class receives
// everything the classes above it left, minus the floor reservations of
// the active classes below it — so restore traffic preempts offload
// during a restore storm, but offload keeps a configurable guaranteed
// fraction of line rate (default 10%) and lifecycle keeps its own floor
// (default 5%), which is what prevents starvation. Inside a class,
// bandwidth is weighted fair queueing over chunk-sized grants: each open
// flow's grant is priced at the class allocation split by flow weight, in
// simulated time, so the whole scheme stays deterministic (no wall-clock
// anywhere).
//
// A flow counts toward its class's WFQ denominator while it is open —
// the same session semantics remote.RecoveryLink has always used
// (Open brackets the whole restore) — so pricing is the instantaneous
// processor-sharing model the rest of the simulation is built on.
//
// The arbiter also keeps a per-class latency/backlog ledger (QoSStats):
// grants, bytes, peak open flows, grant-wait percentiles through
// metrics.Histogram, how many grants were priced under cross-class
// contention (Throttled), and the lowest class allocation any grant saw
// (MinAllocMBps — the number the starvation gate checks against the
// floor). Setting Config.FIFO disables classing entirely: every flow
// shares the line proportionally to its weight regardless of class — the
// pure processor-sharing baseline the QoS experiment quantifies the win
// against.
package netsim

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"

	"repro/internal/metrics"
	"repro/internal/simclock"
)

// Class is a traffic class on the shared NIC. Smaller is higher priority.
type Class uint8

// The three classes, in strict priority order.
const (
	ClassRestore   Class = iota // fleet recovery image streams
	ClassOffload                // steady-state segment offload (NVMe-oE push)
	ClassLifecycle              // retention GC / tier-transition transfers
	NumClasses     = 3
)

// String names the class for ledgers and reports.
func (c Class) String() string {
	switch c {
	case ClassRestore:
		return "restore"
	case ClassOffload:
		return "offload"
	case ClassLifecycle:
		return "lifecycle"
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// Defaults: the recovery-link NIC model (25 GbE-class line rate, a
// request/credit round trip) and the guaranteed floors — restore needs no
// floor (it is the top priority), offload keeps >= 10% of line rate
// through a restore storm, lifecycle keeps >= 5%.
const (
	DefaultMBps = 3000
	DefaultRTT  = 50 * simclock.Microsecond
)

// DefaultFloors returns the default guaranteed-floor fractions per class.
func DefaultFloors() [NumClasses]float64 {
	return [NumClasses]float64{ClassOffload: 0.10, ClassLifecycle: 0.05}
}

// Config configures one shared-NIC arbiter.
type Config struct {
	// MBps is the NIC line rate; RTT the per-grant request round trip.
	// Zero values take the defaults above.
	MBps float64
	RTT  simclock.Duration
	// Floors[c] is the fraction of line rate class c is guaranteed while
	// it has open flows, regardless of higher-priority demand. An all-zero
	// array takes DefaultFloors; negative entries clamp to zero. Floors
	// are honored as long as they sum to <= 1.
	Floors [NumClasses]float64
	// FIFO disables classing: every flow shares the line proportionally to
	// its weight, priority and floors ignored. This is the no-QoS baseline.
	FIFO bool
}

// classLedger is one class's slice of the QoS ledger. All fields are
// guarded by the arbiter mutex.
type classLedger struct {
	grants    uint64
	bytes     uint64
	throttled uint64
	queuePeak int
	minAlloc  float64 // lowest class allocation (MBps) any grant was priced at
	wait      *metrics.Histogram
	spanSet   bool
	first     simclock.Time // earliest timed grant start
	last      simclock.Time // latest timed grant completion
}

// Arbiter is the shared-NIC QoS scheduler. Safe for concurrent use: every
// device goroutine charging the NIC prices its grants through one mutex,
// exactly like the RecoveryLink it generalizes.
type Arbiter struct {
	mbps   float64
	rtt    simclock.Duration
	floors [NumClasses]float64
	fifo   bool

	mu     sync.Mutex
	active [NumClasses]int
	wsum   [NumClasses]float64
	led    [NumClasses]classLedger
}

// New builds an arbiter from cfg with defaults filled in.
func New(cfg Config) *Arbiter {
	if cfg.MBps <= 0 {
		cfg.MBps = DefaultMBps
	}
	if cfg.RTT <= 0 {
		cfg.RTT = DefaultRTT
	}
	allZero := true
	for c := range cfg.Floors {
		if cfg.Floors[c] < 0 {
			cfg.Floors[c] = 0
		}
		allZero = allZero && cfg.Floors[c] == 0
	}
	if allZero {
		cfg.Floors = DefaultFloors()
	}
	a := &Arbiter{mbps: cfg.MBps, rtt: cfg.RTT, floors: cfg.Floors, fifo: cfg.FIFO}
	for c := range a.led {
		a.led[c].minAlloc = math.Inf(1)
		a.led[c].wait = metrics.NewHistogram(0)
	}
	return a
}

// LineMBps returns the NIC line rate.
func (a *Arbiter) LineMBps() float64 { return a.mbps }

// RTT returns the per-grant round trip.
func (a *Arbiter) RTT() simclock.Duration { return a.rtt }

// FIFO reports whether classing is disabled (the no-QoS baseline).
func (a *Arbiter) FIFO() bool { return a.fifo }

// Floors returns the guaranteed-floor fractions.
func (a *Arbiter) Floors() [NumClasses]float64 { return a.floors }

// Flow is one open session on the NIC: a restore stream, one device's
// offload pipeline, or a lifecycle transfer lane. It participates in its
// class's WFQ denominator from Open until Close.
type Flow struct {
	a    *Arbiter
	c    Class
	w    float64
	once sync.Once
}

// Open registers a flow of the given class and weight (weight <= 0 takes
// 1). Close is idempotent.
func (a *Arbiter) Open(c Class, weight float64) *Flow {
	if weight <= 0 {
		weight = 1
	}
	a.mu.Lock()
	a.active[c]++
	a.wsum[c] += weight
	if a.active[c] > a.led[c].queuePeak {
		a.led[c].queuePeak = a.active[c]
	}
	a.mu.Unlock()
	return &Flow{a: a, c: c, w: weight}
}

// Class returns the flow's traffic class.
func (f *Flow) Class() Class { return f.c }

// Close deregisters the flow, returning its share to the class.
func (f *Flow) Close() {
	f.once.Do(func() {
		f.a.mu.Lock()
		f.a.active[f.c]--
		f.a.wsum[f.c] -= f.w
		f.a.mu.Unlock()
	})
}

// Grant charges one chunk-sized transfer starting at `start` and returns
// its completion instant. The grant is priced at the flow's instantaneous
// WFQ share of its class allocation and recorded in the class ledger
// (including the conservation span).
func (f *Flow) Grant(bytes int, start simclock.Time) simclock.Time {
	return start.Add(f.a.grant(f.c, f.w, bytes, start, true))
}

// GrantDur prices one transfer without anchoring it in time (legacy
// callers that track their own clocks). The wait still lands in the
// ledger; the conservation span does not move.
func (f *Flow) GrantDur(bytes int) simclock.Duration {
	return f.a.grant(f.c, f.w, bytes, 0, false)
}

// GrantClass prices one transfer for an equal-weight session of class c
// without a Flow handle — the RecoveryLink delegation path, where Open
// and pricing are decoupled. A class with no open flows is priced as a
// single solo session (the legacy share-clamped-to-1 behavior).
func (a *Arbiter) GrantClass(c Class, bytes int) simclock.Duration {
	return a.grant(c, 0, bytes, 0, false)
}

// GrantClassAt is GrantClass anchored at `now`, so the grant contributes
// to the class's conservation span.
func (a *Arbiter) GrantClassAt(c Class, bytes int, now simclock.Time) simclock.Duration {
	return a.grant(c, 0, bytes, now, true)
}

// minAllocFrac floors a zero class allocation (a floorless class fully
// preempted) so a grant is never priced at infinite duration.
const minAllocFrac = 1e-3

// grant prices one transfer of `bytes` for a flow of class c with the
// given weight (0 = class-level equal-weight pricing) and folds it into
// the ledger. Returns the grant duration: RTT + bytes over the flow's
// share of the class allocation.
func (a *Arbiter) grant(c Class, flowWeight float64, bytes int, now simclock.Time, timed bool) simclock.Duration {
	a.mu.Lock()
	defer a.mu.Unlock()

	// The flow's share divisor: class weight sum over this flow's weight.
	// Class-level pricing (flowWeight 0) treats every open flow as weight
	// 1 — share = session count, the RecoveryLink fair-share formula.
	var share float64
	switch {
	case flowWeight > 0 && a.wsum[c] > 0:
		share = a.wsum[c] / flowWeight
	case flowWeight <= 0:
		share = float64(a.active[c])
	}
	if share < 1 {
		share = 1
	}

	alloc := a.classAllocLocked(c)
	if alloc <= 0 {
		alloc = a.mbps * minAllocFrac
	}
	// Keep the multiplication order of the legacy link models so an
	// uncontended grant is bit-identical to what RecoveryLink.ChunkTime
	// and the engine's xferDur used to charge.
	dur := a.rtt + simclock.Duration(float64(bytes)*share/(alloc*1e6)*float64(simclock.Second))

	led := &a.led[c]
	led.grants++
	led.bytes += uint64(bytes)
	if a.crossActiveLocked(c) {
		led.throttled++
	}
	if alloc < led.minAlloc {
		led.minAlloc = alloc
	}
	led.wait.Observe(dur)
	if timed {
		if !led.spanSet || now < led.first {
			led.first = now
			led.spanSet = true
		}
		if done := now.Add(dur); done > led.last {
			led.last = done
		}
	}
	return dur
}

// crossActiveLocked reports whether any other class has open flows — the
// definition of cross-class contention the Throttled counter records.
func (a *Arbiter) crossActiveLocked(c Class) bool {
	for q := Class(0); q < NumClasses; q++ {
		if q != c && a.active[q] > 0 {
			return true
		}
	}
	return false
}

// classAllocLocked computes class c's instantaneous bandwidth allocation
// in MBps, treating c as active even when it has no open flows (a grant
// is demand).
//
// Strict mode walks classes in priority order: each active class takes
// what its superiors left, minus the floor reservations of the active
// classes below it, but never less than its own floor (and never more
// than what remains — allocations always conserve the line). FIFO mode
// splits the line proportionally to class weight sums: no priority, no
// floors — the baseline where a restore storm and background offload
// trample each other.
func (a *Arbiter) classAllocLocked(c Class) float64 {
	line := a.mbps
	if a.fifo {
		var tot, mine float64
		for q := Class(0); q < NumClasses; q++ {
			w := a.wsum[q]
			if q == c && w <= 0 {
				w = 1 // phantom solo session
			}
			tot += w
			if q == c {
				mine = w
			}
		}
		return line * mine / tot
	}
	avail := line
	for p := Class(0); p < NumClasses; p++ {
		if a.active[p] == 0 && p != c {
			continue
		}
		var reserved float64
		for q := p + 1; q < NumClasses; q++ {
			if a.active[q] > 0 || q == c {
				reserved += a.floors[q] * line
			}
		}
		alloc := avail - reserved
		if fl := a.floors[p] * line; alloc < fl {
			alloc = fl
		}
		if alloc > avail {
			alloc = avail
		}
		if alloc < 0 {
			alloc = 0
		}
		if p == c {
			return alloc
		}
		avail -= alloc
	}
	return 0 // unreachable: the loop always reaches p == c
}

// ActiveFlows returns the number of open flows in class c.
func (a *Arbiter) ActiveFlows(c Class) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.active[c]
}

// QoSStats is one class's slice of the per-class ledger, JSON-friendly
// for the bench files.
type QoSStats struct {
	Class        string
	Grants       uint64
	BytesGranted uint64
	QueuePeak    int     // peak concurrently open flows
	WaitP50Ms    float64 // grant-wait percentiles (RTT + transfer)
	WaitP99Ms    float64
	WaitMaxMs    float64
	Throttled    uint64  // grants priced under cross-class contention
	MinAllocMBps float64 // lowest class allocation any grant saw (0: no grants)
}

// ClassStats snapshots one class's ledger.
func (a *Arbiter) ClassStats(c Class) QoSStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.classStatsLocked(c)
}

func (a *Arbiter) classStatsLocked(c Class) QoSStats {
	led := &a.led[c]
	st := QoSStats{
		Class:        c.String(),
		Grants:       led.grants,
		BytesGranted: led.bytes,
		QueuePeak:    led.queuePeak,
		Throttled:    led.throttled,
	}
	if led.grants > 0 {
		st.WaitP50Ms = float64(led.wait.Percentile(50)) / 1e6
		st.WaitP99Ms = float64(led.wait.Percentile(99)) / 1e6
		st.WaitMaxMs = float64(led.wait.Max()) / 1e6
		st.MinAllocMBps = led.minAlloc
	}
	return st
}

// Stats snapshots every class's ledger, in priority order.
func (a *Arbiter) Stats() [NumClasses]QoSStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	var out [NumClasses]QoSStats
	for c := Class(0); c < NumClasses; c++ {
		out[c] = a.classStatsLocked(c)
	}
	return out
}

// Table renders the per-class ledger as a metrics table — the experiment
// harness prints one per arbiter next to its device tables.
func (a *Arbiter) Table() *metrics.Table {
	t := metrics.NewTable("class", "grants", "MB", "flows_peak",
		"wait_p50_ms", "wait_p99_ms", "throttled", "min_alloc_MBps")
	for _, st := range a.Stats() {
		t.AddRow(st.Class, st.Grants,
			fmt.Sprintf("%.1f", float64(st.BytesGranted)/1e6), st.QueuePeak,
			fmt.Sprintf("%.3f", st.WaitP50Ms), fmt.Sprintf("%.3f", st.WaitP99Ms),
			st.Throttled, fmt.Sprintf("%.1f", st.MinAllocMBps))
	}
	return t
}

// Conservation reports the total bytes granted across all classes, the
// simulated span from the first timed grant's start to the last timed
// grant's completion, and the implied aggregate rate in MBps. The rate
// can never legitimately exceed the line rate — the conservation gate
// the QoS experiment enforces.
func (a *Arbiter) Conservation() (bytes uint64, span simclock.Duration, mbps float64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	var first, last simclock.Time
	seen := false
	for c := range a.led {
		bytes += a.led[c].bytes
		if !a.led[c].spanSet {
			continue
		}
		if !seen || a.led[c].first < first {
			first = a.led[c].first
		}
		if a.led[c].last > last {
			last = a.led[c].last
		}
		seen = true
	}
	if seen {
		span = last.Sub(first)
	}
	if span > 0 {
		mbps = float64(bytes) / span.Seconds() / 1e6
	}
	return bytes, span, mbps
}

// ParseFloors parses the rssdbench -qosfloors value: "offload,lifecycle"
// guaranteed fractions, e.g. "0.10,0.05" (restore, the top priority,
// needs no floor). Each must be in [0, 0.5] and together they must leave
// the restore class a majority of the line.
func ParseFloors(s string) ([NumClasses]float64, error) {
	var out [NumClasses]float64
	parts := strings.Split(s, ",")
	if len(parts) != 2 {
		return out, fmt.Errorf("want \"offload,lifecycle\" fractions, got %q", s)
	}
	sum := 0.0
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return out, fmt.Errorf("floor %q: %w", p, err)
		}
		if v < 0 || v > 0.5 {
			return out, fmt.Errorf("floor %v out of range [0, 0.5]", v)
		}
		out[ClassOffload+Class(i)] = v
		sum += v
	}
	if sum >= 0.5 {
		return out, fmt.Errorf("floors sum to %.2f; must leave restore a majority of the line", sum)
	}
	return out, nil
}
