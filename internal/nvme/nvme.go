// Package nvme models the block I/O interface of Figure 1: an NVMe-style
// command set with submission/completion queues between the (untrusted)
// host and the device firmware.
//
// Commands address 512-byte logical blocks, as NVMe does; the controller
// translates them to the device's flash pages. Multi-block commands are
// split across pages, trims map to Dataset Management deallocations, and
// completions preserve submission order per queue — the firmware event
// loop processes one submission queue entry at a time, which is also the
// concurrency model the rest of the simulation assumes.
package nvme

import (
	"errors"
	"fmt"

	"repro/internal/host"
	"repro/internal/simclock"
)

// Opcode is an NVMe I/O command opcode (the subset the evaluation needs).
type Opcode uint8

// Supported opcodes.
const (
	OpFlush Opcode = 0x00
	OpWrite Opcode = 0x01
	OpRead  Opcode = 0x02
	// OpDSM is Dataset Management with the Deallocate attribute: trim.
	OpDSM Opcode = 0x09
)

func (o Opcode) String() string {
	switch o {
	case OpFlush:
		return "flush"
	case OpWrite:
		return "write"
	case OpRead:
		return "read"
	case OpDSM:
		return "dsm-deallocate"
	default:
		return fmt.Sprintf("Opcode(%#x)", uint8(o))
	}
}

// Status is an NVMe completion status code (simplified).
type Status uint16

// Completion statuses.
const (
	StatusSuccess Status = 0x0
	StatusLBARange Status = 0x80 // LBA out of range
	StatusInternal Status = 0x6
	StatusInvalid  Status = 0x2 // invalid field (bad size, nil buffer)
)

// LBASize is the logical block size exposed by the controller.
const LBASize = 512

// Command is one submission-queue entry.
type Command struct {
	Opcode Opcode
	CID    uint16 // command identifier, echoed in the completion
	SLBA   uint64 // starting LBA
	NLB    uint32 // number of logical blocks
	Data   []byte // write payload (len == NLB*LBASize)
}

// Completion is one completion-queue entry.
type Completion struct {
	CID    uint16
	Status Status
	Data   []byte // read payload
	SQHead int    // submission queue head after this completion
	At     simclock.Time
}

// Errors returned by queue operations.
var (
	ErrQueueFull  = errors.New("nvme: submission queue full")
	ErrQueueEmpty = errors.New("nvme: completion queue empty")
)

// Controller fronts a block device with NVMe-style queue pairs.
type Controller struct {
	dev      host.BlockDevice
	pageSize int
	lbasPerPage uint64
	maxLBA   uint64
}

// NewController wraps a block device. The device's page size must be a
// multiple of the 512-byte LBA size (flash pages always are).
func NewController(dev host.BlockDevice) *Controller {
	ps := dev.PageSize()
	if ps%LBASize != 0 {
		panic(fmt.Sprintf("nvme: page size %d not a multiple of %d", ps, LBASize))
	}
	lpp := uint64(ps / LBASize)
	return &Controller{
		dev:         dev,
		pageSize:    ps,
		lbasPerPage: lpp,
		maxLBA:      dev.LogicalPages() * lpp,
	}
}

// MaxLBA returns the number of addressable logical blocks.
func (c *Controller) MaxLBA() uint64 { return c.maxLBA }

// QueuePair creates a submission/completion queue pair of the given depth.
func (c *Controller) QueuePair(depth int) *QueuePair {
	if depth <= 0 {
		depth = 64
	}
	return &QueuePair{ctrl: c, depth: depth}
}

// QueuePair is one NVMe SQ/CQ pair. Not safe for concurrent use, like a
// per-core NVMe queue.
type QueuePair struct {
	ctrl  *Controller
	depth int
	sq    []Command
	cq    []Completion
}

// Submit places a command on the submission queue.
func (q *QueuePair) Submit(cmd Command) error {
	if len(q.sq)+len(q.cq) >= q.depth {
		return ErrQueueFull
	}
	q.sq = append(q.sq, cmd)
	return nil
}

// Process executes up to n submitted commands (n <= 0 means all),
// appending completions in submission order. It returns the simulated time
// after the last executed command.
func (q *QueuePair) Process(n int, at simclock.Time) simclock.Time {
	if n <= 0 || n > len(q.sq) {
		n = len(q.sq)
	}
	for i := 0; i < n; i++ {
		cmd := q.sq[i]
		comp := q.ctrl.execute(cmd, &at)
		comp.SQHead = len(q.sq) - (i + 1)
		q.cq = append(q.cq, comp)
	}
	q.sq = append(q.sq[:0], q.sq[n:]...)
	return at
}

// Reap pops the oldest completion.
func (q *QueuePair) Reap() (Completion, error) {
	if len(q.cq) == 0 {
		return Completion{}, ErrQueueEmpty
	}
	comp := q.cq[0]
	q.cq = append(q.cq[:0], q.cq[1:]...)
	return comp, nil
}

// Outstanding returns the number of unprocessed submissions.
func (q *QueuePair) Outstanding() int { return len(q.sq) }

// Completions returns the number of unreaped completions.
func (q *QueuePair) Completions() int { return len(q.cq) }

// execute runs one command against the device.
func (c *Controller) execute(cmd Command, at *simclock.Time) Completion {
	comp := Completion{CID: cmd.CID, Status: StatusSuccess}
	end := cmd.SLBA + uint64(cmd.NLB)
	if cmd.Opcode != OpFlush && (cmd.NLB == 0 || end > c.maxLBA || end < cmd.SLBA) {
		comp.Status = StatusLBARange
		comp.At = *at
		return comp
	}
	// Page-aligned commands on a batch-capable device go down the batched
	// datapath: one submission per command, scheduled across channels.
	if bc, ok := c.executeBatched(cmd, at); ok {
		return bc
	}
	switch cmd.Opcode {
	case OpFlush:
		comp.At = *at // all writes are durable on completion in this model

	case OpWrite:
		if len(cmd.Data) != int(cmd.NLB)*LBASize {
			comp.Status = StatusInvalid
			break
		}
		// Read-modify-write for partial pages at the edges, full-page
		// writes in the middle — exactly what a controller does.
		firstPage := cmd.SLBA / c.lbasPerPage
		lastPage := (end - 1) / c.lbasPerPage
		off := 0
		for p := firstPage; p <= lastPage; p++ {
			pageStartLBA := p * c.lbasPerPage
			lo := uint64(0)
			if cmd.SLBA > pageStartLBA {
				lo = cmd.SLBA - pageStartLBA
			}
			hi := c.lbasPerPage
			if end < pageStartLBA+c.lbasPerPage {
				hi = end - pageStartLBA
			}
			var page []byte
			if lo == 0 && hi == c.lbasPerPage {
				page = cmd.Data[off : off+c.pageSize]
			} else {
				old, done, err := c.dev.Read(p, *at)
				if err != nil {
					comp.Status = StatusInternal
					comp.At = *at
					return comp
				}
				*at = done
				copy(old[lo*LBASize:hi*LBASize], cmd.Data[off:])
				page = old
			}
			done, err := c.dev.Write(p, page, *at)
			if err != nil {
				comp.Status = StatusInternal
				comp.At = *at
				return comp
			}
			*at = done
			off += int(hi-lo) * LBASize
		}
		comp.At = *at

	case OpRead:
		out := make([]byte, 0, int(cmd.NLB)*LBASize)
		firstPage := cmd.SLBA / c.lbasPerPage
		lastPage := (end - 1) / c.lbasPerPage
		for p := firstPage; p <= lastPage; p++ {
			data, done, err := c.dev.Read(p, *at)
			if err != nil {
				comp.Status = StatusInternal
				comp.At = *at
				return comp
			}
			*at = done
			pageStartLBA := p * c.lbasPerPage
			lo := uint64(0)
			if cmd.SLBA > pageStartLBA {
				lo = cmd.SLBA - pageStartLBA
			}
			hi := c.lbasPerPage
			if end < pageStartLBA+c.lbasPerPage {
				hi = end - pageStartLBA
			}
			out = append(out, data[lo*LBASize:hi*LBASize]...)
		}
		comp.Data = out
		comp.At = *at

	case OpDSM:
		// Deallocate: whole pages are trimmed; partial pages at the
		// edges are left alone (deallocation is advisory in NVMe).
		firstFull := (cmd.SLBA + c.lbasPerPage - 1) / c.lbasPerPage
		lastFull := end / c.lbasPerPage // exclusive
		for p := firstFull; p < lastFull; p++ {
			done, err := c.dev.Trim(p, *at)
			if err != nil {
				comp.Status = StatusInternal
				comp.At = *at
				return comp
			}
			*at = done
		}
		comp.At = *at

	default:
		comp.Status = StatusInvalid
		comp.At = *at
	}
	if comp.At == 0 {
		comp.At = *at
	}
	return comp
}
