package nvme

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/simclock"
)

// TestProcessMoreThanOutstanding: Process(n) with n beyond the queue's
// outstanding submissions executes what is there and no more.
func TestProcessMoreThanOutstanding(t *testing.T) {
	q := newCtrl().QueuePair(32)
	for i := 0; i < 3; i++ {
		if err := q.Submit(Command{Opcode: OpFlush, CID: uint16(i)}); err != nil {
			t.Fatal(err)
		}
	}
	q.Process(100, 0)
	if q.Outstanding() != 0 || q.Completions() != 3 {
		t.Fatalf("outstanding=%d completions=%d after over-asking", q.Outstanding(), q.Completions())
	}
	// A second over-ask on an empty SQ is a no-op.
	q.Process(5, 0)
	if q.Completions() != 3 {
		t.Fatal("processing an empty queue produced completions")
	}
}

// TestReapEmptyCQ: reaping with nothing completed fails cleanly.
func TestReapEmptyCQ(t *testing.T) {
	q := newCtrl().QueuePair(8)
	if _, err := q.Reap(); !errors.Is(err, ErrQueueEmpty) {
		t.Fatalf("err = %v, want ErrQueueEmpty", err)
	}
	// Submitted but unprocessed commands still reap nothing.
	if err := q.Submit(Command{Opcode: OpFlush}); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Reap(); !errors.Is(err, ErrQueueEmpty) {
		t.Fatalf("err = %v, want ErrQueueEmpty before Process", err)
	}
}

// TestSubmitToFullSQAcrossQueues: depth is enforced per queue pair, not
// shared across the MultiQueue.
func TestSubmitToFullSQAcrossQueues(t *testing.T) {
	m := newCtrl().MultiQueue(2, 2)
	q0, q1 := m.Queue(0), m.Queue(1)
	for i := 0; i < 2; i++ {
		if err := q0.Submit(Command{Opcode: OpFlush}); err != nil {
			t.Fatal(err)
		}
	}
	if err := q0.Submit(Command{Opcode: OpFlush}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("q0: err = %v, want ErrQueueFull", err)
	}
	// The sibling queue still has room.
	if err := q1.Submit(Command{Opcode: OpFlush}); err != nil {
		t.Fatalf("q1 rejected despite empty SQ: %v", err)
	}
}

// TestMultiQueueRoundRobinOrder submits two write commands to each of
// three queues and verifies the controller serves them one per queue per
// arbitration round: q0[0], q1[0], q2[0], q0[1], q1[1], q2[1] — visible in
// the monotone completion timestamps across queues.
func TestMultiQueueRoundRobinOrder(t *testing.T) {
	m := newCtrl().MultiQueue(3, 16)
	for qi := 0; qi < 3; qi++ {
		for c := 0; c < 2; c++ {
			cmd := Command{
				Opcode: OpWrite, CID: uint16(qi*10 + c),
				SLBA: uint64((qi*2 + c) * 8), NLB: 8, Data: lbas(byte(qi), 8),
			}
			if err := m.Queue(qi).Submit(cmd); err != nil {
				t.Fatal(err)
			}
		}
	}
	end := m.Process(0, 0)
	if end <= 0 {
		t.Fatal("processing consumed no simulated time")
	}
	if m.Outstanding() != 0 {
		t.Fatalf("outstanding = %d after ProcessAll", m.Outstanding())
	}
	// Reap per queue; each queue's completions are in its own submission
	// order, and the k-th completion of queue i must have finished before
	// the k-th completion of queue i+1 (round-robin service order).
	var comps [3][]Completion
	for qi := 0; qi < 3; qi++ {
		for {
			c, err := m.Queue(qi).Reap()
			if err != nil {
				break
			}
			comps[qi] = append(comps[qi], c)
		}
		if len(comps[qi]) != 2 {
			t.Fatalf("queue %d: %d completions, want 2", qi, len(comps[qi]))
		}
	}
	for round := 0; round < 2; round++ {
		for qi := 0; qi < 2; qi++ {
			if comps[qi][round].At >= comps[qi+1][round].At {
				t.Fatalf("round %d: queue %d completed at %v, not before queue %d at %v",
					round, qi, comps[qi][round].At, qi+1, comps[qi+1][round].At)
			}
		}
	}
	// And round 1 of queue 0 comes after round 0 of queue 2.
	if comps[0][1].At <= comps[2][0].At {
		t.Fatal("second arbitration round started before the first finished")
	}
}

// TestMultiQueueCursorResumes: arbitration continues where the previous
// Process left off instead of always restarting at queue 0.
func TestMultiQueueCursorResumes(t *testing.T) {
	m := newCtrl().MultiQueue(2, 8)
	m.Queue(0).Submit(Command{Opcode: OpFlush, CID: 1})
	m.Queue(1).Submit(Command{Opcode: OpFlush, CID: 2})
	m.Process(1, 0) // serves queue 0
	if m.Queue(0).Completions() != 1 || m.Queue(1).Completions() != 0 {
		t.Fatal("first Process(1) did not serve queue 0")
	}
	m.Queue(0).Submit(Command{Opcode: OpFlush, CID: 3})
	m.Process(1, 0) // cursor is at queue 1: its command goes first
	if m.Queue(1).Completions() != 1 {
		t.Fatal("arbitration cursor did not resume at queue 1")
	}
}

// TestMultiQueueDataIntegrity pushes interleaved writes through many
// queues and reads everything back through another queue: the batched
// doorbell path must preserve contents exactly.
func TestMultiQueueDataIntegrity(t *testing.T) {
	ctrl := newCtrl()
	m := ctrl.MultiQueue(4, 32)
	// 16 pages, striped across queues, written as full-page commands
	// (8 LBAs per 4 KiB page at 512-byte LBAs = NLB 8).
	for p := 0; p < 16; p++ {
		cmd := Command{Opcode: OpWrite, CID: uint16(p), SLBA: uint64(p * 8), NLB: 8, Data: lbas(byte(p), 8)}
		if err := m.Queue(p % 4).Submit(cmd); err != nil {
			t.Fatal(err)
		}
	}
	m.ProcessAll(0)
	q := m.Queue(0)
	if err := q.Submit(Command{Opcode: OpRead, CID: 99, SLBA: 0, NLB: 16 * 8}); err != nil {
		t.Fatal(err)
	}
	m.ProcessAll(simclock.Time(simclock.Second))
	var read Completion
	for {
		c, err := q.Reap()
		if err != nil {
			t.Fatal("read completion not found")
		}
		if c.CID == 99 {
			read = c
			break
		}
	}
	if read.Status != StatusSuccess {
		t.Fatalf("read status %v", read.Status)
	}
	for p := 0; p < 16; p++ {
		if !bytes.Equal(read.Data[p*8*LBASize:(p+1)*8*LBASize], lbas(byte(p), 8)) {
			t.Fatalf("page %d content mismatch", p)
		}
	}
}
