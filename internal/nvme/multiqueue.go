package nvme

import (
	"fmt"

	"repro/internal/batch"
	"repro/internal/simclock"
)

// MultiQueue is an N-queue-pair NVMe front: one submission/completion
// queue pair per host core, arbitrated round-robin the way an NVMe
// controller arbitrates between submission queues (burst size 1). The
// original single QueuePair remains available for hosts that only want
// one queue; a MultiQueue of one queue behaves identically to it.
type MultiQueue struct {
	ctrl *Controller
	qps  []*QueuePair
	rr   int // arbitration cursor: index of the next queue to serve
}

// MultiQueue creates n queue pairs of the given depth, sharing this
// controller. n defaults to 1, depth to 64 (as in QueuePair).
func (c *Controller) MultiQueue(n, depth int) *MultiQueue {
	if n <= 0 {
		n = 1
	}
	m := &MultiQueue{ctrl: c, qps: make([]*QueuePair, n)}
	for i := range m.qps {
		m.qps[i] = c.QueuePair(depth)
	}
	return m
}

// Queues returns the number of queue pairs.
func (m *MultiQueue) Queues() int { return len(m.qps) }

// Queue returns queue pair i; hosts submit to and reap from it directly.
func (m *MultiQueue) Queue(i int) *QueuePair { return m.qps[i] }

// Outstanding returns the total number of unprocessed submissions across
// all queues.
func (m *MultiQueue) Outstanding() int {
	n := 0
	for _, q := range m.qps {
		n += q.Outstanding()
	}
	return n
}

// Process is the doorbell: it executes up to n submitted commands (n <= 0
// means all currently outstanding), drawing one command per non-empty
// submission queue per round-robin arbitration round, starting where the
// previous call left off. Completions land on each command's own queue in
// that arbitration order. It returns the simulated time after the last
// executed command.
func (m *MultiQueue) Process(n int, at simclock.Time) simclock.Time {
	if n <= 0 {
		n = m.Outstanding()
	}
	for n > 0 {
		served := false
		for k := 0; k < len(m.qps) && n > 0; k++ {
			q := m.qps[m.rr]
			m.rr = (m.rr + 1) % len(m.qps)
			if q.Outstanding() > 0 {
				at = q.Process(1, at)
				n--
				served = true
			}
		}
		if !served {
			break
		}
	}
	return at
}

// ProcessAll drains every submission queue: Process(0, at).
func (m *MultiQueue) ProcessAll(at simclock.Time) simclock.Time { return m.Process(0, at) }

// --- batched command execution ---------------------------------------------

// executeBatched runs a command's page operations through the device's
// submission-batch interface when the device supports it: a multi-page
// NVMe command becomes one device batch, scheduled across NAND channels,
// instead of a page-at-a-time loop. It reports handled=false when the
// command must take the per-op path (partial-page edges, flush, or a
// device without batch support).
func (c *Controller) executeBatched(cmd Command, at *simclock.Time) (comp Completion, handled bool) {
	dev, ok := c.dev.(batch.Device)
	if !ok {
		return Completion{}, false
	}
	end := cmd.SLBA + uint64(cmd.NLB)
	if cmd.SLBA%c.lbasPerPage != 0 || end%c.lbasPerPage != 0 {
		// Partial pages need read-modify-write (or are skipped, for DSM);
		// keep those on the per-op path rather than duplicating the edge
		// handling here.
		return Completion{}, false
	}
	firstPage := cmd.SLBA / c.lbasPerPage
	pages := int(uint64(cmd.NLB) / c.lbasPerPage)
	var ops []batch.Op
	switch cmd.Opcode {
	case OpWrite:
		if len(cmd.Data) != int(cmd.NLB)*LBASize {
			return Completion{CID: cmd.CID, Status: StatusInvalid, At: *at}, true
		}
		ops = make([]batch.Op, pages)
		for p := 0; p < pages; p++ {
			ops[p] = batch.Op{
				Kind: batch.OpWrite, LPN: firstPage + uint64(p),
				Data: cmd.Data[p*c.pageSize : (p+1)*c.pageSize],
			}
		}
	case OpRead:
		ops = make([]batch.Op, pages)
		for p := 0; p < pages; p++ {
			ops[p] = batch.Op{Kind: batch.OpRead, LPN: firstPage + uint64(p)}
		}
	case OpDSM:
		ops = make([]batch.Op, pages)
		for p := 0; p < pages; p++ {
			ops[p] = batch.Op{Kind: batch.OpTrim, LPN: firstPage + uint64(p)}
		}
	default:
		return Completion{}, false
	}
	res, done, err := dev.SubmitBatch(ops, *at)
	if err != nil {
		*at = done
		return Completion{CID: cmd.CID, Status: StatusInternal, At: *at}, true
	}
	comp = Completion{CID: cmd.CID, Status: StatusSuccess}
	if cmd.Opcode == OpRead {
		comp.Data = make([]byte, 0, int(cmd.NLB)*LBASize)
	}
	for i := range res {
		if res[i].Err != nil {
			*at = done
			return Completion{CID: cmd.CID, Status: StatusInternal, At: *at}, true
		}
		if cmd.Opcode == OpRead {
			comp.Data = append(comp.Data, res[i].Data...)
		}
	}
	*at = done
	comp.At = *at
	return comp, true
}

// String aids debugging of arbitration traces.
func (m *MultiQueue) String() string {
	return fmt.Sprintf("nvme.MultiQueue{queues: %d, outstanding: %d, cursor: %d}", len(m.qps), m.Outstanding(), m.rr)
}
