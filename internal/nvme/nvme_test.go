package nvme

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/ftl"
	"repro/internal/nand"
	"repro/internal/simclock"
)

// newCtrl returns a controller over a plain FTL with 4 KiB pages.
func newCtrl() *Controller {
	cfg := ftl.Config{
		NAND: nand.Config{
			Geometry: nand.Geometry{
				Channels: 2, ChipsPerChannel: 2, DiesPerChip: 1, PlanesPerDie: 1,
				BlocksPerPlane: 32, PagesPerBlock: 16, PageSize: 4096,
			},
			Timing: nand.DefaultTiming(),
		},
		OverProvision: 0.2,
	}
	return NewController(ftl.New(cfg, nil))
}

func lbas(b byte, n int) []byte {
	p := make([]byte, n*LBASize)
	for i := range p {
		p[i] = b
	}
	return p
}

func submitAndRun(t *testing.T, q *QueuePair, cmd Command) Completion {
	t.Helper()
	if err := q.Submit(cmd); err != nil {
		t.Fatal(err)
	}
	q.Process(0, 0)
	comp, err := q.Reap()
	if err != nil {
		t.Fatal(err)
	}
	return comp
}

func TestWriteReadAligned(t *testing.T) {
	q := newCtrl().QueuePair(32)
	data := lbas(0xAB, 16) // exactly two pages
	w := submitAndRun(t, q, Command{Opcode: OpWrite, CID: 1, SLBA: 0, NLB: 16, Data: data})
	if w.Status != StatusSuccess || w.CID != 1 {
		t.Fatalf("write completion: %+v", w)
	}
	r := submitAndRun(t, q, Command{Opcode: OpRead, CID: 2, SLBA: 0, NLB: 16})
	if r.Status != StatusSuccess || !bytes.Equal(r.Data, data) {
		t.Fatalf("read mismatch: status %v, %d bytes", r.Status, len(r.Data))
	}
}

func TestUnalignedWriteReadModifyWrite(t *testing.T) {
	q := newCtrl().QueuePair(32)
	// Fill page 0 with background, then overwrite LBAs 2..5 only.
	submitAndRun(t, q, Command{Opcode: OpWrite, CID: 1, SLBA: 0, NLB: 8, Data: lbas(0x11, 8)})
	w := submitAndRun(t, q, Command{Opcode: OpWrite, CID: 2, SLBA: 2, NLB: 3, Data: lbas(0x22, 3)})
	if w.Status != StatusSuccess {
		t.Fatalf("partial write: %+v", w)
	}
	r := submitAndRun(t, q, Command{Opcode: OpRead, CID: 3, SLBA: 0, NLB: 8})
	for i := 0; i < 8; i++ {
		want := byte(0x11)
		if i >= 2 && i < 5 {
			want = 0x22
		}
		if r.Data[i*LBASize] != want {
			t.Fatalf("lba %d = %#x, want %#x", i, r.Data[i*LBASize], want)
		}
	}
}

func TestCrossPageUnalignedRead(t *testing.T) {
	q := newCtrl().QueuePair(32)
	submitAndRun(t, q, Command{Opcode: OpWrite, CID: 1, SLBA: 0, NLB: 24, Data: func() []byte {
		p := make([]byte, 24*LBASize)
		for i := 0; i < 24; i++ {
			p[i*LBASize] = byte(i)
		}
		return p
	}()})
	// Read LBAs 6..18: spans three pages, unaligned on both ends.
	r := submitAndRun(t, q, Command{Opcode: OpRead, CID: 2, SLBA: 6, NLB: 12})
	if r.Status != StatusSuccess || len(r.Data) != 12*LBASize {
		t.Fatalf("read: %+v (%d bytes)", r.Status, len(r.Data))
	}
	for i := 0; i < 12; i++ {
		if r.Data[i*LBASize] != byte(6+i) {
			t.Fatalf("lba %d = %d, want %d", 6+i, r.Data[i*LBASize], 6+i)
		}
	}
}

func TestDSMTrimsWholePagesOnly(t *testing.T) {
	ctrl := newCtrl()
	q := ctrl.QueuePair(32)
	submitAndRun(t, q, Command{Opcode: OpWrite, CID: 1, SLBA: 0, NLB: 24, Data: lbas(0x33, 24)})
	// Deallocate LBAs 4..20: only page 1 (LBAs 8..15) is fully covered.
	d := submitAndRun(t, q, Command{Opcode: OpDSM, CID: 2, SLBA: 4, NLB: 16})
	if d.Status != StatusSuccess {
		t.Fatalf("dsm: %+v", d)
	}
	r := submitAndRun(t, q, Command{Opcode: OpRead, CID: 3, SLBA: 0, NLB: 24})
	if r.Data[0] != 0x33 || r.Data[23*LBASize] != 0x33 {
		t.Fatal("partial pages were trimmed")
	}
	if r.Data[8*LBASize] != 0 || r.Data[15*LBASize] != 0 {
		t.Fatal("fully covered page not trimmed")
	}
}

func TestFlushCompletes(t *testing.T) {
	q := newCtrl().QueuePair(32)
	c := submitAndRun(t, q, Command{Opcode: OpFlush, CID: 9})
	if c.Status != StatusSuccess || c.CID != 9 {
		t.Fatalf("flush: %+v", c)
	}
}

func TestLBARangeErrors(t *testing.T) {
	ctrl := newCtrl()
	q := ctrl.QueuePair(32)
	max := ctrl.MaxLBA()
	cases := []Command{
		{Opcode: OpRead, SLBA: max, NLB: 1},
		{Opcode: OpWrite, SLBA: max - 1, NLB: 2, Data: lbas(0, 2)},
		{Opcode: OpRead, SLBA: 0, NLB: 0},
		{Opcode: OpDSM, SLBA: ^uint64(0) - 1, NLB: 4},
	}
	for i, cmd := range cases {
		cmd.CID = uint16(i)
		if c := submitAndRun(t, q, cmd); c.Status != StatusLBARange {
			t.Errorf("case %d: status %v, want LBARange", i, c.Status)
		}
	}
}

func TestInvalidWritePayload(t *testing.T) {
	q := newCtrl().QueuePair(32)
	c := submitAndRun(t, q, Command{Opcode: OpWrite, SLBA: 0, NLB: 4, Data: lbas(0, 3)})
	if c.Status != StatusInvalid {
		t.Fatalf("status = %v", c.Status)
	}
}

func TestUnknownOpcode(t *testing.T) {
	q := newCtrl().QueuePair(32)
	c := submitAndRun(t, q, Command{Opcode: Opcode(0x7F), SLBA: 0, NLB: 1})
	if c.Status != StatusInvalid {
		t.Fatalf("status = %v", c.Status)
	}
}

func TestQueueDepthEnforced(t *testing.T) {
	q := newCtrl().QueuePair(2)
	if err := q.Submit(Command{Opcode: OpFlush}); err != nil {
		t.Fatal(err)
	}
	if err := q.Submit(Command{Opcode: OpFlush}); err != nil {
		t.Fatal(err)
	}
	if err := q.Submit(Command{Opcode: OpFlush}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v", err)
	}
	// Processing does not free depth until completions are reaped.
	q.Process(0, 0)
	if err := q.Submit(Command{Opcode: OpFlush}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("unreaped completions should hold depth: %v", err)
	}
	q.Reap()
	if err := q.Submit(Command{Opcode: OpFlush}); err != nil {
		t.Fatalf("after reap: %v", err)
	}
}

func TestCompletionOrderMatchesSubmission(t *testing.T) {
	q := newCtrl().QueuePair(32)
	for i := 0; i < 5; i++ {
		if err := q.Submit(Command{Opcode: OpWrite, CID: uint16(i), SLBA: uint64(i * 8), NLB: 8, Data: lbas(byte(i), 8)}); err != nil {
			t.Fatal(err)
		}
	}
	q.Process(0, 0)
	for i := 0; i < 5; i++ {
		c, err := q.Reap()
		if err != nil || c.CID != uint16(i) {
			t.Fatalf("completion %d: cid %d err %v", i, c.CID, err)
		}
	}
	if _, err := q.Reap(); !errors.Is(err, ErrQueueEmpty) {
		t.Fatalf("err = %v", err)
	}
}

func TestPartialProcessing(t *testing.T) {
	q := newCtrl().QueuePair(32)
	for i := 0; i < 4; i++ {
		q.Submit(Command{Opcode: OpFlush, CID: uint16(i)})
	}
	q.Process(2, 0)
	if q.Outstanding() != 2 || q.Completions() != 2 {
		t.Fatalf("outstanding=%d completions=%d", q.Outstanding(), q.Completions())
	}
}

func TestSimTimeAdvancesThroughQueue(t *testing.T) {
	q := newCtrl().QueuePair(32)
	q.Submit(Command{Opcode: OpWrite, CID: 1, SLBA: 0, NLB: 8, Data: lbas(1, 8)})
	end := q.Process(0, simclock.Time(1000))
	if end <= simclock.Time(1000) {
		t.Fatal("processing consumed no simulated time")
	}
	c, _ := q.Reap()
	if c.At != end {
		t.Fatalf("completion at %v, processing ended %v", c.At, end)
	}
}

// Property: any aligned write/read pair round-trips through the LBA layer.
func TestLBARoundTripProperty(t *testing.T) {
	ctrl := newCtrl()
	q := ctrl.QueuePair(64)
	f := func(slba16 uint16, nlb8 uint8, fill byte) bool {
		nlb := uint32(nlb8%32) + 1
		slba := uint64(slba16) % (ctrl.MaxLBA() - uint64(nlb))
		data := lbas(fill, int(nlb))
		if err := q.Submit(Command{Opcode: OpWrite, SLBA: slba, NLB: nlb, Data: data}); err != nil {
			return false
		}
		q.Process(0, 0)
		if c, _ := q.Reap(); c.Status != StatusSuccess {
			return false
		}
		if err := q.Submit(Command{Opcode: OpRead, SLBA: slba, NLB: nlb}); err != nil {
			return false
		}
		q.Process(0, 0)
		c, _ := q.Reap()
		return c.Status == StatusSuccess && bytes.Equal(c.Data, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
