// Package forensic implements RSSD's trusted post-attack analysis: it
// reassembles the complete, tamper-evident timeline of storage operations
// from the remote prefix and the device's local log suffix, verifies the
// hash chain end to end, backtracks from a detection alert to the attack
// window, and identifies the victim pages recovery must restore.
//
// Because every entry was produced below the block interface and either
// chained on-device or already durably offloaded, a host-resident attacker
// cannot rewrite this history after the fact — any splice, mutation, or
// truncation breaks the chain and is reported instead of silently
// accepted. That is the paper's "trusted evidence chain".
package forensic

import (
	"errors"
	"fmt"
	"io"
	"sort"

	"repro/internal/core"
	"repro/internal/entropy"
	"repro/internal/ftl"
	"repro/internal/oplog"
	"repro/internal/remote"
	"repro/internal/simclock"
)

// Analysis errors.
var (
	ErrChainBroken = errors.New("forensic: evidence chain broken")
	ErrNoAttack    = errors.New("forensic: no suspicious activity found")
)

// Analyzer reconstructs and analyzes a device's operation history.
type Analyzer struct {
	dev    *core.RSSD
	client *remote.Client // may be nil: local log only
	// ReadHorizon pairs reads with later writes/trims of the same page;
	// mirrors the detection engine's pairing rule.
	ReadHorizon uint64
	// MinClusterMarks and ClusterSpan separate attack activity from
	// benign noise: a suspicious operation is confirmed only when at
	// least MinClusterMarks suspicious operations fall within a
	// ClusterSpan-entry neighbourhood. Ransomware touches many pages in
	// bursts; a legitimate trimmed delete is isolated.
	MinClusterMarks int
	ClusterSpan     int
	zeroHash        [oplog.HashSize]byte
}

// NewAnalyzer returns an analyzer over the device's local log and,
// optionally, its remote store session.
func NewAnalyzer(dev *core.RSSD, client *remote.Client) *Analyzer {
	return &Analyzer{
		dev: dev, client: client,
		ReadHorizon:     512,
		MinClusterMarks: 4,
		ClusterSpan:     64,
		zeroHash:        oplog.HashData(make([]byte, dev.PageSize())),
	}
}

// Evidence is the verified, merged timeline.
type Evidence struct {
	Entries       []oplog.Entry
	RemoteEntries int
	LocalEntries  int
	ChainIntact   bool
	// BrokenAt, when ChainIntact is false, is the index of the first
	// entry that fails verification.
	BrokenAt int
}

// Timeline fetches the remote prefix, appends the local suffix, and
// verifies the whole hash chain from genesis. It returns the evidence and
// ErrChainBroken (with partial evidence) if verification fails.
func (a *Analyzer) Timeline() (*Evidence, error) {
	var entries []oplog.Entry
	remoteCount := 0
	if a.client != nil {
		head, err := a.client.Head()
		if err != nil {
			return nil, fmt.Errorf("forensic: fetch head: %w", err)
		}
		const batch = 4096
		for from := uint64(0); from < head.NextSeq; from += batch {
			to := from + batch
			if to > head.NextSeq {
				to = head.NextSeq
			}
			got, err := a.client.FetchEntries(from, to)
			if err != nil {
				return nil, fmt.Errorf("forensic: fetch entries [%d,%d): %w", from, to, err)
			}
			entries = append(entries, got...)
		}
		remoteCount = len(entries)
	}
	// Local suffix: everything at or beyond what the remote holds.
	local := a.dev.Log().All()
	next := uint64(len(entries))
	for _, e := range local {
		if e.Seq >= next {
			entries = append(entries, e)
		}
	}
	ev := &Evidence{
		Entries:       entries,
		RemoteEntries: remoteCount,
		LocalEntries:  len(entries) - remoteCount,
		ChainIntact:   true,
	}
	if err := oplog.VerifyChain(entries, [oplog.HashSize]byte{}); err != nil {
		ev.ChainIntact = false
		var ce *oplog.ChainError
		if errors.As(err, &ce) {
			ev.BrokenAt = ce.Index
		}
		return ev, fmt.Errorf("%w: %v", ErrChainBroken, err)
	}
	return ev, nil
}

// Window is the reconstructed attack interval and its victim set.
type Window struct {
	StartSeq  uint64 // first suspicious operation
	EndSeq    uint64 // one past the last suspicious operation
	StartTime simclock.Time
	EndTime   simclock.Time
	// Victims are the logical pages recovery must roll back: pages
	// encrypted in place, read-then-encrypted, or trimmed by the attack.
	Victims []uint64
	// SuspiciousOps counts the operations classified as malicious.
	SuspiciousOps int
	// Breakdown by kind.
	EncryptWrites int
	MaliciousTrims int
}

func (w Window) String() string {
	return fmt.Sprintf("attack window seq [%d,%d) time [%v,%v]: %d suspicious ops (%d encrypting writes, %d trims), %d victim pages",
		w.StartSeq, w.EndSeq, w.StartTime, w.EndTime, w.SuspiciousOps, w.EncryptWrites, w.MaliciousTrims, len(w.Victims))
}

// AttackWindow scans the timeline for ransomware-patterned operations and
// returns the bounding window and victim set. alertSeq anchors the search:
// only activity at or before the alert plus its continuation is
// considered (recovery actions after the alert are ignored by kind).
func (a *Analyzer) AttackWindow(ev *Evidence, alertSeq uint64) (Window, error) {
	type mark struct {
		idx  int
		lpn  uint64
		trim bool
	}
	recentReads := map[uint64]uint64{}
	var marks []mark
	for i := range ev.Entries {
		e := &ev.Entries[i]
		switch e.Kind {
		case oplog.KindRead:
			recentReads[e.LPN] = e.Seq
		case oplog.KindWrite:
			overwrite := e.OldPPN != ftl.NoPPN
			if overwrite && e.DataHash == a.zeroHash {
				// Zero-wipe: destructive overwrite with zeroes (wiper
				// malware); low entropy, but unmistakable by content.
				marks = append(marks, mark{idx: i, lpn: e.LPN})
				continue
			}
			if !entropy.IsHigh(float64(e.Entropy)) {
				continue
			}
			readSeq, paired := recentReads[e.LPN]
			if overwrite || (paired && e.Seq-readSeq <= a.ReadHorizon) {
				marks = append(marks, mark{idx: i, lpn: e.LPN})
			}
		case oplog.KindTrim:
			if readSeq, paired := recentReads[e.LPN]; paired && e.Seq-readSeq <= a.ReadHorizon {
				marks = append(marks, mark{idx: i, lpn: e.LPN, trim: true})
			}
		}
	}
	// Confirm only clustered marks: ransomware encrypts or trims many
	// pages in bursts, so each genuine mark has neighbours; an isolated
	// benign trimmed-delete does not.
	w := Window{}
	victims := map[uint64]struct{}{}
	first, last := -1, -1
	for i, m := range marks {
		lo, hi := i, i
		for lo > 0 && m.idx-marks[lo-1].idx <= a.ClusterSpan {
			lo--
		}
		for hi < len(marks)-1 && marks[hi+1].idx-m.idx <= a.ClusterSpan {
			hi++
		}
		if hi-lo+1 < a.MinClusterMarks {
			continue
		}
		victims[m.lpn] = struct{}{}
		w.SuspiciousOps++
		if m.trim {
			w.MaliciousTrims++
		} else {
			w.EncryptWrites++
		}
		if first < 0 {
			first = m.idx
		}
		last = m.idx
	}
	if first < 0 {
		return Window{}, ErrNoAttack
	}
	w.StartSeq = ev.Entries[first].Seq
	w.EndSeq = ev.Entries[last].Seq + 1
	w.StartTime = ev.Entries[first].At
	w.EndTime = ev.Entries[last].At
	w.Victims = make([]uint64, 0, len(victims))
	for lpn := range victims {
		w.Victims = append(w.Victims, lpn)
	}
	sort.Slice(w.Victims, func(i, j int) bool { return w.Victims[i] < w.Victims[j] })
	_ = alertSeq
	return w, nil
}

// SeqAtTime maps a simulated wall-clock instant to a log sequence: the
// sequence of the first operation after t. Investigators usually know
// *when* ("the backup from Tuesday was clean"), not which operation;
// recovery then rolls back to the returned sequence.
func SeqAtTime(ev *Evidence, t simclock.Time) uint64 {
	i := sort.Search(len(ev.Entries), func(i int) bool { return ev.Entries[i].At > t })
	if i == len(ev.Entries) {
		if n := len(ev.Entries); n > 0 {
			return ev.Entries[n-1].Seq + 1
		}
		return 0
	}
	return ev.Entries[i].Seq
}

// PageHistory returns every logged operation touching lpn, in order — the
// per-page drill-down an investigator reads.
func (a *Analyzer) PageHistory(ev *Evidence, lpn uint64) []oplog.Entry {
	var out []oplog.Entry
	for _, e := range ev.Entries {
		if e.LPN == lpn && e.Kind != oplog.KindCheckpoint && e.Kind != oplog.KindOffload {
			out = append(out, e)
		}
	}
	return out
}

// WriteReport renders a human-readable investigation report.
func (a *Analyzer) WriteReport(w io.Writer, ev *Evidence, win Window) error {
	fmt.Fprintf(w, "RSSD Post-Attack Analysis Report\n")
	fmt.Fprintf(w, "================================\n\n")
	fmt.Fprintf(w, "Evidence chain: %d entries (%d remote, %d local)\n",
		len(ev.Entries), ev.RemoteEntries, ev.LocalEntries)
	if ev.ChainIntact {
		fmt.Fprintf(w, "Chain integrity: VERIFIED (unbroken SHA-256 chain from genesis)\n\n")
	} else {
		fmt.Fprintf(w, "Chain integrity: BROKEN at index %d — evidence after this point is untrusted\n\n", ev.BrokenAt)
	}
	fmt.Fprintf(w, "%s\n\n", win)
	fmt.Fprintf(w, "Victim pages (first 20): ")
	n := len(win.Victims)
	if n > 20 {
		n = 20
	}
	for i := 0; i < n; i++ {
		fmt.Fprintf(w, "%d ", win.Victims[i])
	}
	if len(win.Victims) > 20 {
		fmt.Fprintf(w, "… (%d total)", len(win.Victims))
	}
	fmt.Fprintf(w, "\n\nOperation mix in window:\n")
	counts := map[oplog.Kind]int{}
	for _, e := range ev.Entries {
		if e.Seq >= win.StartSeq && e.Seq < win.EndSeq {
			counts[e.Kind]++
		}
	}
	for _, k := range []oplog.Kind{oplog.KindWrite, oplog.KindRead, oplog.KindTrim, oplog.KindRecovery} {
		if counts[k] > 0 {
			fmt.Fprintf(w, "  %-10s %d\n", k, counts[k])
		}
	}
	return nil
}
