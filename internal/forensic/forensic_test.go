package forensic

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/ftl"
	"repro/internal/host"
	"repro/internal/nand"
	"repro/internal/remote"
	"repro/internal/simclock"
)

var psk = []byte("forensic-test-psk-0123456789abcd")

type rig struct {
	fs     *host.FlatFS
	dev    *core.RSSD
	store  *remote.Store
	client *remote.Client
}

func newRig(t *testing.T) *rig {
	t.Helper()
	store := remote.NewStore(remote.NewMemStore())
	srv := remote.NewServer(store, psk)
	client, err := remote.Loopback(srv, psk, 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	cfg := core.DefaultConfig()
	cfg.FTL = ftl.Config{
		NAND: nand.Config{
			Geometry: nand.Geometry{
				Channels: 2, ChipsPerChannel: 2, DiesPerChip: 1, PlanesPerDie: 1,
				BlocksPerPlane: 64, PagesPerBlock: 8, PageSize: 512,
			},
			Timing: nand.DefaultTiming(),
		},
		OverProvision: 0.2,
	}
	cfg.CheckpointEvery = 0
	dev := core.New(cfg, client)
	return &rig{fs: host.NewFlatFS(dev, simclock.NewClock()), dev: dev, store: store, client: client}
}

func TestTimelineMergesRemoteAndLocal(t *testing.T) {
	r := newRig(t)
	rng := rand.New(rand.NewSource(1))
	attack.Seed(r.fs, rng, 10, 2)
	// Force part of the log remote, keep a local suffix.
	if _, err := r.dev.OffloadNow(r.fs.Clock().Now()); err != nil {
		t.Fatal(err)
	}
	attack.RunBenign(r.fs, rng, 30, simclock.Minute)

	a := NewAnalyzer(r.dev, r.client)
	ev, err := a.Timeline()
	if err != nil {
		t.Fatal(err)
	}
	if !ev.ChainIntact {
		t.Fatal("chain reported broken")
	}
	if ev.RemoteEntries == 0 || ev.LocalEntries == 0 {
		t.Fatalf("merge did not span both stores: remote=%d local=%d", ev.RemoteEntries, ev.LocalEntries)
	}
	if uint64(len(ev.Entries)) != r.dev.Log().NextSeq() {
		t.Fatalf("timeline has %d entries, device issued %d", len(ev.Entries), r.dev.Log().NextSeq())
	}
	// Sequences are contiguous from zero.
	for i, e := range ev.Entries {
		if e.Seq != uint64(i) {
			t.Fatalf("entry %d has seq %d", i, e.Seq)
		}
	}
}

func TestTimelineLocalOnly(t *testing.T) {
	r := newRig(t)
	rng := rand.New(rand.NewSource(2))
	attack.Seed(r.fs, rng, 5, 2)
	a := NewAnalyzer(r.dev, nil)
	ev, err := a.Timeline()
	if err != nil {
		t.Fatal(err)
	}
	if ev.RemoteEntries != 0 || ev.LocalEntries == 0 {
		t.Fatalf("local-only: %+v", ev)
	}
}

func TestAttackWindowOnEncryptor(t *testing.T) {
	r := newRig(t)
	rng := rand.New(rand.NewSource(3))
	attack.Seed(r.fs, rng, 12, 3)
	attack.RunBenign(r.fs, rng, 60, simclock.Minute)
	preAttackSeq := r.dev.Log().NextSeq()
	rep, err := (&attack.Encryptor{Key: [32]byte{1}}).Run(r.fs, rng)
	if err != nil {
		t.Fatal(err)
	}
	a := NewAnalyzer(r.dev, r.client)
	ev, err := a.Timeline()
	if err != nil {
		t.Fatal(err)
	}
	win, err := a.AttackWindow(ev, r.dev.Log().NextSeq())
	if err != nil {
		t.Fatal(err)
	}
	if win.StartSeq < preAttackSeq {
		t.Fatalf("window starts at %d, before the attack began at %d", win.StartSeq, preAttackSeq)
	}
	if len(win.Victims) == 0 || win.EncryptWrites == 0 {
		t.Fatalf("window = %+v", win)
	}
	// Every encrypted page should be identified: the encryptor touched
	// rep.FilesAttacked files; victims must cover at least one page each.
	if len(win.Victims) < rep.FilesAttacked {
		t.Fatalf("victims %d < files attacked %d", len(win.Victims), rep.FilesAttacked)
	}
}

func TestAttackWindowOnTrimmingAttack(t *testing.T) {
	r := newRig(t)
	rng := rand.New(rand.NewSource(4))
	attack.Seed(r.fs, rng, 8, 2)
	(&attack.TrimmingAttack{Key: [32]byte{2}}).Run(r.fs, rng)
	a := NewAnalyzer(r.dev, r.client)
	ev, _ := a.Timeline()
	win, err := a.AttackWindow(ev, r.dev.Log().NextSeq())
	if err != nil {
		t.Fatal(err)
	}
	if win.MaliciousTrims == 0 {
		t.Fatalf("no malicious trims identified: %+v", win)
	}
}

func TestAttackWindowBenignOnly(t *testing.T) {
	r := newRig(t)
	rng := rand.New(rand.NewSource(5))
	attack.Seed(r.fs, rng, 10, 2)
	attack.RunBenign(r.fs, rng, 200, simclock.Minute)
	a := NewAnalyzer(r.dev, r.client)
	ev, err := a.Timeline()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.AttackWindow(ev, 0); !errors.Is(err, ErrNoAttack) {
		t.Fatalf("benign timeline produced a window: %v", err)
	}
}

func TestPageHistory(t *testing.T) {
	r := newRig(t)
	at := simclock.Time(0)
	at, _ = r.dev.Write(5, make([]byte, 512), at)
	at, _ = r.dev.Write(5, make([]byte, 512), at)
	r.dev.Read(5, at)
	r.dev.Trim(5, at)
	r.dev.Write(6, make([]byte, 512), at)
	a := NewAnalyzer(r.dev, r.client)
	ev, _ := a.Timeline()
	hist := a.PageHistory(ev, 5)
	if len(hist) != 4 {
		t.Fatalf("history of lpn 5 = %d entries", len(hist))
	}
	for _, e := range hist {
		if e.LPN != 5 {
			t.Fatalf("foreign entry in history: %+v", e)
		}
	}
}

func TestSeqAtTime(t *testing.T) {
	r := newRig(t)
	at := simclock.Time(0)
	page := make([]byte, 512)
	// Ops at t=1h, 2h, 3h.
	for i := 1; i <= 3; i++ {
		r.fs.Clock().AdvanceTo(simclock.Time(i) * simclock.Time(simclock.Hour))
		if _, err := r.dev.Write(uint64(i), page, r.fs.Clock().Now()); err != nil {
			t.Fatal(err)
		}
	}
	_ = at
	a := NewAnalyzer(r.dev, r.client)
	ev, err := a.Timeline()
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		t    simclock.Time
		want uint64
	}{
		{0, 0},                                      // before everything
		{simclock.Time(90 * simclock.Minute), 1},    // between op 0 and 1
		{simclock.Time(2 * simclock.Hour), 2},       // exactly at op 1 -> next
		{simclock.Time(10 * simclock.Hour), 3},      // after everything
	}
	for _, c := range cases {
		if got := SeqAtTime(ev, c.t); got != c.want {
			t.Errorf("SeqAtTime(%v) = %d, want %d", c.t, got, c.want)
		}
	}
	// Empty evidence.
	if got := SeqAtTime(&Evidence{}, 5); got != 0 {
		t.Errorf("empty evidence seq = %d", got)
	}
}

func TestWriteReport(t *testing.T) {
	r := newRig(t)
	rng := rand.New(rand.NewSource(6))
	attack.Seed(r.fs, rng, 10, 2)
	(&attack.Encryptor{Key: [32]byte{1}}).Run(r.fs, rng)
	a := NewAnalyzer(r.dev, r.client)
	ev, _ := a.Timeline()
	win, err := a.AttackWindow(ev, r.dev.Log().NextSeq())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := a.WriteReport(&buf, ev, win); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"VERIFIED", "attack window", "Victim pages", "write"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

// TestEvidenceSurvivesHostCompromise: after offload, even an attacker with
// full host control cannot change what the remote store holds — the chain
// head is fixed, and re-pushing altered history is rejected upstream (see
// remote tests). Here we confirm the analyst's view is stable: the same
// remote prefix is returned before and after further (attacker) activity.
func TestEvidenceSurvivesHostCompromise(t *testing.T) {
	r := newRig(t)
	rng := rand.New(rand.NewSource(7))
	attack.Seed(r.fs, rng, 8, 2)
	r.dev.OffloadNow(r.fs.Clock().Now())
	head1 := r.store.Head(1)
	before := r.store.Entries(1, 0, head1.NextSeq)

	// Attacker acts (and even triggers more offload).
	(&attack.Encryptor{Key: [32]byte{9}}).Run(r.fs, rng)
	r.dev.OffloadNow(r.fs.Clock().Now())

	after := r.store.Entries(1, 0, head1.NextSeq)
	if len(before) != len(after) {
		t.Fatalf("remote prefix changed length: %d -> %d", len(before), len(after))
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("remote prefix entry %d changed", i)
		}
	}
}
