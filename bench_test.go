// Package rssd holds the top-level benchmark harness: one benchmark per
// table/figure/claim of the paper (backed by internal/experiment, the same
// engine cmd/rssdbench uses) plus microbenchmarks of the hot paths.
//
// Run everything:
//
//	go test -bench=. -benchmem
package rssd

import (
	"math/rand"
	"net"
	"testing"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/entropy"
	"repro/internal/experiment"
	"repro/internal/forensic"
	"repro/internal/ftl"
	"repro/internal/host"
	"repro/internal/nand"
	"repro/internal/nvmeoe"
	"repro/internal/oplog"
	"repro/internal/recovery"
	"repro/internal/remote"
	"repro/internal/simclock"
	"repro/internal/workload"
)

// benchScale keeps per-iteration work bounded so -bench completes quickly;
// cmd/rssdbench -scale full produces the headline numbers.
func benchScale() experiment.Scale {
	s := experiment.SmallScale()
	s.TraceOps = 2000
	return s
}

// --- Experiment benchmarks: one per table/figure ---------------------------

// BenchmarkFig2RetentionTime regenerates Figure 2 (data retention time for
// 12 workloads under LocalSSD / +Compression / RSSD).
func BenchmarkFig2RetentionTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiment.Fig2Retention(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 12 {
			b.Fatal("missing workloads")
		}
	}
}

// BenchmarkTable1DefenseMatrix regenerates Table 1 (defense + recovery +
// forensics across four systems and four attacks).
func BenchmarkTable1DefenseMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells, err := experiment.DefenseMatrix(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		if len(cells) != 16 {
			b.Fatal("missing cells")
		}
	}
}

// BenchmarkPerfOverhead regenerates claim P1 (<1% storage performance
// overhead under trace-paced replay).
func BenchmarkPerfOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.PerfOverhead(benchScale(), []string{"hm"}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLifetimeWAF regenerates claim P2 (minimal write-amplification /
// lifetime impact).
func BenchmarkLifetimeWAF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.LifetimeWAF(benchScale(), []string{"hm"}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRecoverySpeed regenerates claim P3 (fast post-attack recovery).
func BenchmarkRecoverySpeed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiment.RecoverySpeed(benchScale(), []int{20})
		if err != nil {
			b.Fatal(err)
		}
		if !rows[0].Complete {
			b.Fatal("recovery incomplete")
		}
	}
}

// BenchmarkEvidenceChain regenerates claim P4 (efficient trusted
// post-attack analysis).
func BenchmarkEvidenceChain(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiment.ForensicsSpeed(benchScale(), []int{2000})
		if err != nil {
			b.Fatal(err)
		}
		if !rows[0].ChainIntact {
			b.Fatal("chain broken")
		}
	}
}

// BenchmarkOffloadCost measures the NVMe-oE offload path under churn.
func BenchmarkOffloadCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiment.OffloadCost(benchScale(), []string{"src"})
		if err != nil {
			b.Fatal(err)
		}
		if rows[0].DroppedPages != 0 {
			b.Fatal("data dropped")
		}
	}
}

// BenchmarkAttackValidation replays the three Ransomware 2.0 attacks (plus
// the classic encryptor) against an unprotected SSD.
func BenchmarkAttackValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.AttackValidation(benchScale()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDetectionLatency measures the offloaded detection pipeline's
// coverage/latency across all six attack variants.
func BenchmarkDetectionLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiment.DetectionLatency(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if !r.Detected {
				b.Fatalf("%s undetected", r.Attack)
			}
		}
	}
}

// BenchmarkReopen measures mount-time recovery: OOB scan + remote log
// replay + retention-index reconstruction after a power cycle.
func BenchmarkReopen(b *testing.B) {
	store := remote.NewStore(remote.NewMemStore())
	srv := remote.NewServer(store, experiment.PSK)
	client, err := remote.Loopback(srv, experiment.PSK, 1)
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.FTL = smallFTLConfig()
	dev := core.New(cfg, client)
	page := make([]byte, 4096)
	at := simclock.Time(0)
	for i := 0; i < 4000; i++ {
		if at, err = dev.Write(uint64(i)%dev.LogicalPages(), page, at); err != nil {
			b.Fatal(err)
		}
	}
	if _, err := dev.OffloadNow(at); err != nil {
		b.Fatal(err)
	}
	client.Close()
	nandDev := dev.FTL().Device()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := remote.Loopback(srv, experiment.PSK, 1)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := core.Reopen(cfg, nandDev, c); err != nil {
			b.Fatal(err)
		}
		c.Close()
	}
}

// --- Ablation benchmarks (design choices called out in DESIGN.md) ----------

// BenchmarkAblationDetectors runs the detector-ablation matrix.
func BenchmarkAblationDetectors(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.DetectionAblation(benchScale()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationEnhancedTrim compares the trimming attack's damage with
// RSSD's enhanced trim on vs. off.
func BenchmarkAblationEnhancedTrim(b *testing.B) {
	run := func(disable bool) int {
		s := benchScale()
		store := remote.NewStore(remote.NewMemStore())
		srv := remote.NewServer(store, experiment.PSK)
		client, err := remote.Loopback(srv, experiment.PSK, 1)
		if err != nil {
			b.Fatal(err)
		}
		defer client.Close()
		cfg := core.DefaultConfig()
		cfg.FTL = ftlConfigFor(s)
		cfg.DisableEnhancedTrim = disable
		dev := core.New(cfg, client)
		fsys := hostFS(dev)
		rng := rand.New(rand.NewSource(5))
		attack.Seed(fsys, rng, s.SeedFiles, s.MaxFilePages)
		(&attack.TrimmingAttack{Key: [32]byte{9}}).Run(fsys, rng)
		an := forensic.NewAnalyzer(dev, client)
		ev, err := an.Timeline()
		if err != nil {
			b.Fatal(err)
		}
		win, err := an.AttackWindow(ev, dev.Log().NextSeq())
		if err != nil {
			return 0
		}
		eng := recovery.NewEngine(dev, client, recovery.Options{})
		_, rep, err := eng.RestoreWindow(win, fsys.Clock().Now())
		if err != nil {
			b.Fatal(err)
		}
		return rep.PagesRestored
	}
	b.Run("enhanced-trim", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if run(false) == 0 {
				b.Fatal("enhanced trim restored nothing")
			}
		}
	})
	b.Run("native-trim", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run(true) // restores little or nothing: the ablation's point
		}
	})
}

// BenchmarkAblationGCPolicy compares greedy vs. cost-benefit GC WAF.
func BenchmarkAblationGCPolicy(b *testing.B) {
	for _, policy := range []struct {
		name string
		p    ftl.GCPolicy
	}{{"greedy", ftl.GreedyGC}, {"cost-benefit", ftl.CostBenefitGC}} {
		b.Run(policy.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := ftlConfigFor(benchScale())
				cfg.Policy = policy.p
				f := ftl.New(cfg, nil)
				prof, _ := workload.ProfileByName("hm")
				g := workload.NewGenerator(prof, cfg.NAND.Geometry.PageSize, f.LogicalPages(), 3)
				at := simclock.Time(0)
				// Write several device capacities so GC reaches steady
				// state; otherwise both policies trivially report WAF 1.
				writes := int(f.LogicalPages()) * 3
				for j := 0; j < writes; {
					rec := g.Next()
					if rec.Op != workload.OpWrite {
						continue
					}
					if rec.LPN < f.LogicalPages() {
						at, _ = f.Write(rec.LPN, g.Content(), at)
						j++
					}
				}
				b.ReportMetric(f.WAF(), "WAF")
			}
		})
	}
}

// BenchmarkBatchedReplay replays the same RSSD trace through the per-op
// path (one synchronous call per page), the submission-batch path (one
// SubmitBatch per trace record), and the NVMe multi-queue path (one
// command per record through round-robin arbitration). Bytes/s compares
// host-side throughput; the lat-µs metric is each path's mean simulated
// record latency — the device-parallelism win the batched datapath
// exists for. Persist full-scale numbers with `cmd/rssdbench -exp batch
// -json`.
func BenchmarkBatchedReplay(b *testing.B) {
	s := benchScale()
	run := func(b *testing.B, replay func() (experiment.ReplayStats, error)) {
		var st experiment.ReplayStats
		for i := 0; i < b.N; i++ {
			var err error
			st, err = replay()
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(st.PageOps) * int64(s.PageSize))
		}
		b.ReportMetric(float64(st.MeanLat())/1000, "lat-µs")
	}
	b.Run("per-op", func(b *testing.B) {
		run(b, func() (experiment.ReplayStats, error) { return experiment.ReplayPerOp(s, "hm", 23) })
	})
	b.Run("batched", func(b *testing.B) {
		run(b, func() (experiment.ReplayStats, error) { return experiment.ReplayBatched(s, "hm", 23) })
	})
	b.Run("nvme-multiqueue", func(b *testing.B) {
		run(b, func() (experiment.ReplayStats, error) { return experiment.ReplayNVMe(s, "hm", 23, 4) })
	})
}

// --- Microbenchmarks of the hot paths ---------------------------------------

func smallFTLConfig() ftl.Config {
	return ftl.Config{
		NAND: nand.Config{
			Geometry: nand.Geometry{
				Channels: 4, ChipsPerChannel: 2, DiesPerChip: 1, PlanesPerDie: 1,
				BlocksPerPlane: 64, PagesPerBlock: 16, PageSize: 4096,
			},
			Timing: nand.DefaultTiming(),
		},
		OverProvision: 0.125,
	}
}

func ftlConfigFor(s experiment.Scale) ftl.Config {
	cfg := smallFTLConfig()
	cfg.NAND.Geometry.BlocksPerPlane = s.BlocksPerPlane
	cfg.NAND.Geometry.PagesPerBlock = s.PagesPerBlock
	cfg.NAND.Geometry.PageSize = s.PageSize
	return cfg
}

// BenchmarkFTLWrite measures the raw FTL write path (no retention).
func BenchmarkFTLWrite(b *testing.B) {
	f := ftl.New(smallFTLConfig(), nil)
	page := make([]byte, 4096)
	at := simclock.Time(0)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		at, err = f.Write(uint64(i)%f.LogicalPages(), page, at)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRSSDWrite measures the full RSSD write path: logging, entropy
// stamping, retention bookkeeping, and live offload.
func BenchmarkRSSDWrite(b *testing.B) {
	store := remote.NewStore(remote.NewMemStore())
	srv := remote.NewServer(store, experiment.PSK)
	client, err := remote.Loopback(srv, experiment.PSK, 1)
	if err != nil {
		b.Fatal(err)
	}
	defer client.Close()
	cfg := core.DefaultConfig()
	cfg.FTL = smallFTLConfig()
	dev := core.New(cfg, client)
	page := make([]byte, 4096)
	at := simclock.Time(0)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		at, err = dev.Write(uint64(i)%dev.LogicalPages(), page, at)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOplogAppend measures hash-chained log appends.
func BenchmarkOplogAppend(b *testing.B) {
	l := oplog.New()
	h := oplog.HashData([]byte("x"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Append(oplog.KindWrite, simclock.Time(i), uint64(i), 0, uint64(i), 7.5, h)
	}
}

// BenchmarkChainVerify measures evidence-chain verification throughput.
func BenchmarkChainVerify(b *testing.B) {
	l := oplog.New()
	for i := 0; i < 10000; i++ {
		l.Append(oplog.KindWrite, simclock.Time(i), uint64(i), 0, uint64(i), 0, [32]byte{})
	}
	entries := l.All()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := oplog.VerifyChain(entries, [32]byte{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(entries)), "entries/op")
}

// BenchmarkSegmentMarshal measures offload segment encoding.
func BenchmarkSegmentMarshal(b *testing.B) {
	seg := &oplog.Segment{DeviceID: 1}
	data := make([]byte, 4096)
	for i := 0; i < 128; i++ {
		seg.Pages = append(seg.Pages, oplog.PageRecord{
			LPN: uint64(i), WriteSeq: uint64(i), StaleSeq: uint64(i + 1),
			Hash: oplog.HashData(data), Data: data,
		})
	}
	b.SetBytes(int64(128 * 4096))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := seg.Marshal()
		if _, err := oplog.UnmarshalSegment(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNVMeoEThroughput measures the secure transport end to end
// (compress + encrypt + MAC + frame + verify + decrypt).
func BenchmarkNVMeoEThroughput(b *testing.B) {
	dc, sc := net.Pipe()
	psk := experiment.PSK
	srvCh := make(chan *nvmeoe.Conn, 1)
	go func() {
		conn, _, err := nvmeoe.ServerHandshake(sc, func(uint64) ([]byte, bool) { return psk, true })
		if err != nil {
			srvCh <- nil
			return
		}
		srvCh <- conn
	}()
	dev, err := nvmeoe.DeviceHandshake(dc, psk, 1)
	if err != nil {
		b.Fatal(err)
	}
	srv := <-srvCh
	if srv == nil {
		b.Fatal("handshake failed")
	}
	payload := make([]byte, 256<<10)
	rand.New(rand.NewSource(1)).Read(payload)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		errCh := make(chan error, 1)
		go func() { errCh <- dev.WriteMsg(nvmeoe.MsgSegment, payload) }()
		if _, _, err := srv.ReadMsg(); err != nil {
			b.Fatal(err)
		}
		if err := <-errCh; err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEntropyEstimate measures the device-side entropy stamp.
func BenchmarkEntropyEstimate(b *testing.B) {
	data := make([]byte, 4096)
	rand.New(rand.NewSource(2)).Read(data)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		entropy.Sampled(data, 512)
	}
}

// BenchmarkTraceGenerator measures synthetic workload generation.
func BenchmarkTraceGenerator(b *testing.B) {
	prof, _ := workload.ProfileByName("hm")
	g := workload.NewGenerator(prof, 4096, 1<<20, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Next()
	}
}

// hostFS builds a FlatFS over an RSSD for the ablation benches.
func hostFS(dev *core.RSSD) *host.FlatFS {
	return host.NewFlatFS(dev, simclock.NewClock())
}
