// Command tracegen emits synthetic block traces for the twelve workloads
// of Figure 2, in MSR-Cambridge CSV format, so external tools (or the
// parsers in internal/workload) can replay them.
//
//	tracegen -workload hm -ops 100000 > hm.csv
//	tracegen -list
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/workload"
)

func main() {
	name := flag.String("workload", "hm", "workload profile name")
	ops := flag.Int("ops", 100000, "operations to generate")
	pageSize := flag.Int("pagesize", 4096, "page size in bytes")
	capacity := flag.Uint64("pages", 1<<22, "logical pages of the target device")
	seed := flag.Int64("seed", 1, "generator seed")
	list := flag.Bool("list", false, "list available workload profiles")
	flag.Parse()

	if *list {
		for _, p := range workload.Profiles {
			fmt.Printf("%-9s src=%s write=%.2f trim=%.3f daily=%.1fGiB ws=%.1fGiB zipf=%.2f\n",
				p.Name, p.Source, p.WriteFrac, p.TrimFrac, p.DailyWriteGiB, p.WorkingSetGiB, p.ZipfS)
		}
		return
	}
	prof, ok := workload.ProfileByName(*name)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown workload %q (use -list)\n", *name)
		os.Exit(2)
	}
	g := workload.NewGenerator(prof, *pageSize, *capacity, *seed)
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	// MSR format: Timestamp(FILETIME ticks),Hostname,Disk,Type,Offset,Size,ResponseTime
	for i := 0; i < *ops; i++ {
		rec := g.Next()
		op := "Write"
		if rec.Op == workload.OpRead {
			op = "Read"
		} else if rec.Op == workload.OpTrim {
			// MSR has no trim; emit as a zero-size write comment line the
			// parsers skip, preserving op counts for human inspection.
			fmt.Fprintf(w, "# trim lpn=%d pages=%d at=%d\n", rec.LPN, rec.Pages, int64(rec.At))
			continue
		}
		ticks := int64(rec.At) / 100 // ns -> 100ns FILETIME ticks
		fmt.Fprintf(w, "%d,%s,0,%s,%d,%d,0\n",
			ticks, prof.Name, op, rec.LPN*uint64(*pageSize), uint64(rec.Pages)*uint64(*pageSize))
	}
}
