// Command rssdbench regenerates every table and figure of the RSSD paper
// from the simulated implementation. Run with -exp all (the default) to
// produce the full evaluation, or select one experiment:
//
//	rssdbench -exp fig2           # Figure 2: data retention time
//	rssdbench -exp table1         # Table 1: defense matrix
//	rssdbench -exp perf           # claim P1: <1% performance overhead
//	rssdbench -exp lifetime       # claim P2: write amplification / lifetime
//	rssdbench -exp recovery-speed # claim P3: fast post-attack recovery (single device)
//	rssdbench -exp forensics      # claim P4: evidence-chain construction
//	rssdbench -exp offload        # NVMe-oE offload cost
//	rssdbench -exp detection      # detection coverage/latency, six variants
//	rssdbench -exp attacks        # Ransomware 2.0 validation vs. LocalSSD
//	rssdbench -exp batch          # batched vs per-op datapath replay
//	rssdbench -exp fleet          # N devices: async offload + streaming detection; -servers M
//	                              # adds the cluster control plane (placement, failover, scaling)
//	rssdbench -exp retention      # storage tiers: local server vs modeled S3 (capacity/latency/cost)
//	rssdbench -exp recovery       # fleet power-cycle: attack -> detect -> N concurrent streamed restores
//	rssdbench -exp dedup          # content-addressed restore: dedup+delta vs full-image, scaling curve
//	rssdbench -exp datapath       # allocation-tracked hot loops + encode-worker vs inline-encode replay
//	rssdbench -exp ingest         # server decode lane: saturated multi-session ingest vs modeled NIC
//	rssdbench -exp qos            # shared-NIC QoS: restore storm vs offload + lifecycle, strict-priority vs FIFO
//	rssdbench -exp soak           # chaos soak: multi-day horizon, seeded fault injection, continuous invariants
//
// -scale small uses the test-sized configuration for a quick pass, and
// -short shrinks further to the CI smoke size (small scale, 2 devices —
// an explicitly-set -devices is honored). -servers selects the ingest
// server count for -exp fleet and is rejected elsewhere. -dedup toggles
// the content-addressed restore path for -exp recovery (on by default).
// -qos toggles strict-priority classing on the shared recovery NIC for
// -exp recovery (on by default; false runs the FIFO baseline), and
// -qosfloors sets the offload,lifecycle guaranteed floors for the
// experiments that price the shared NIC (recovery, qos). Like -servers,
// both are rejected for experiments that do not consume them.
// -backend selects the storage tier(s) for -exp retention: mem, dir,
// s3sim, a comma-separated list, or all.
// -json additionally writes each experiment's rows to BENCH_<name>.json
// (with the resolved flag set echoed in the header, so every bench file
// is self-describing) so successive runs can be diffed to track the
// performance trajectory.
// -cpuprofile and -memprofile write runtime/pprof profiles covering the
// selected experiments, so perf work can show before/after flame graphs.
// An unknown -exp value is rejected with the list of registered
// experiments.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"slices"
	"strings"
	"time"

	"repro/internal/experiment"
	"repro/internal/netsim"
	"repro/internal/remote"
)

func main() { os.Exit(run()) }

// run is main with deferred cleanup (pprof stop/write) that os.Exit would
// skip: every exit path returns through it.
func run() int {
	exp := flag.String("exp", "all", "experiment to run: all, or one registered name (an unknown name prints the registry)")
	scaleFlag := flag.String("scale", "full", "experiment scale (full, small)")
	jsonOut := flag.Bool("json", false, "write machine-readable BENCH_<name>.json per experiment")
	fleetDevices := flag.Int("devices", 8, "device count for -exp fleet, retention, recovery, and ingest")
	fleetServers := flag.Int("servers", 1, "ingest server count for -exp fleet (>1 runs the cluster control plane: consistent-hash placement, injected failover, scaling curve)")
	backendFlag := flag.String("backend", "all", "storage tier(s) for -exp retention: mem, dir, s3sim, a comma list, or all")
	dedupFlag := flag.Bool("dedup", true, "content-addressed restore (hash-ref chunks + checkpoint-anchored delta) for -exp recovery")
	qosFlag := flag.Bool("qos", true, "strict-priority QoS on the shared recovery NIC for -exp recovery (false: FIFO baseline)")
	qosFloors := flag.String("qosfloors", "0.10,0.05", "offload,lifecycle guaranteed floor fractions on the shared NIC for -exp recovery and qos")
	short := flag.Bool("short", false, "CI smoke size: small scale, 2 devices (explicit -devices wins)")
	seedFlag := flag.Int64("seed", 1, "chaos schedule seed for -exp soak (every fault draw replays from it)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile covering the selected experiments to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile (after the run) to this file")
	flag.Parse()

	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })

	// -servers is a fleet-experiment knob; like an unknown -exp it is
	// rejected early — with the list of experiments that support it —
	// rather than silently ignored for an hour-long run.
	serverExps := []string{"fleet", "soak"}
	if explicit["servers"] && !slices.Contains(serverExps, *exp) {
		fmt.Fprintf(os.Stderr, "-servers is not supported by -exp %s (supported: %s)\n",
			*exp, strings.Join(serverExps, ", "))
		return 2
	}
	// -dedup selects the restore path for the recovery experiment; the
	// dedup experiment always measures both paths, so an explicit flag
	// anywhere else is a mistake worth rejecting early.
	dedupExps := []string{"recovery"}
	if explicit["dedup"] && !slices.Contains(dedupExps, *exp) {
		fmt.Fprintf(os.Stderr, "-dedup is not supported by -exp %s (supported: %s)\n",
			*exp, strings.Join(dedupExps, ", "))
		return 2
	}
	// The QoS knobs follow the same registry rule: -qos picks the arbiter
	// mode for the recovery run (the qos experiment always measures both
	// modes), -qosfloors configures any experiment that prices the shared
	// NIC.
	qosExps := []string{"recovery"}
	if explicit["qos"] && !slices.Contains(qosExps, *exp) {
		fmt.Fprintf(os.Stderr, "-qos is not supported by -exp %s (supported: %s)\n",
			*exp, strings.Join(qosExps, ", "))
		return 2
	}
	// -seed is the chaos schedule's replay handle; only the soak draws
	// from it, so anywhere else it is a typo worth stopping on.
	seedExps := []string{"soak"}
	if explicit["seed"] && !slices.Contains(seedExps, *exp) {
		fmt.Fprintf(os.Stderr, "-seed is not supported by -exp %s (supported: %s)\n",
			*exp, strings.Join(seedExps, ", "))
		return 2
	}
	qosFloorExps := []string{"recovery", "qos"}
	if explicit["qosfloors"] && !slices.Contains(qosFloorExps, *exp) {
		fmt.Fprintf(os.Stderr, "-qosfloors is not supported by -exp %s (supported: %s)\n",
			*exp, strings.Join(qosFloorExps, ", "))
		return 2
	}
	floors, err := netsim.ParseFloors(*qosFloors)
	if err != nil {
		fmt.Fprintf(os.Stderr, "-qosfloors %q: %v\n", *qosFloors, err)
		return 2
	}
	if *fleetServers < 1 {
		fmt.Fprintf(os.Stderr, "-servers %d: need at least 1\n", *fleetServers)
		return 2
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			return 2
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			return 2
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
			fmt.Printf("wrote CPU profile to %s\n", *cpuProfile)
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle: profile live + cumulative allocation sites
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			fmt.Printf("wrote allocation profile to %s\n", *memProfile)
		}()
	}

	var s experiment.Scale
	switch *scaleFlag {
	case "full":
		s = experiment.FullScale()
	case "small":
		s = experiment.SmallScale()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scaleFlag)
		return 2
	}
	if *short {
		s = experiment.SmallScale()
		// An explicitly-set -devices survives -short: the CI cluster smoke
		// runs `-exp fleet -devices 64 -servers 4 -short` and means it.
		if *fleetDevices > 2 && !explicit["devices"] {
			*fleetDevices = 2
		}
		*scaleFlag = "short" // label persisted JSON honestly
	}

	backends := experiment.RetentionBackends
	if *backendFlag != "all" {
		backends = backends[:0:0]
		for _, name := range strings.Split(*backendFlag, ",") {
			backends = append(backends, strings.TrimSpace(name))
		}
	}
	// Fail on a bad tier name in milliseconds, not after earlier tiers
	// already ran for minutes.
	for _, name := range backends {
		if !slices.Contains(remote.Backends(), name) {
			fmt.Fprintf(os.Stderr, "unknown backend %q (have %v)\n", name, remote.Backends())
			return 2
		}
	}

	// persist writes one experiment's rows as BENCH_<name>.json when -json
	// is set, so future sessions can track the perf trajectory machine-
	// readably instead of scraping tables.
	persist := func(name string, rows any) error {
		if !*jsonOut {
			return nil
		}
		// The header echoes the resolved flag set, so every BENCH file is
		// self-describing: a trajectory diff can tell a -short smoke from a
		// full run without reconstructing the command line.
		blob, err := json.MarshalIndent(map[string]any{
			"experiment": name,
			"scale":      *scaleFlag,
			"flags": map[string]any{
				"exp":     *exp,
				"scale":   *scaleFlag,
				"devices": *fleetDevices,
				"servers": *fleetServers,
				"backend": *backendFlag,
				"short":     *short,
				"dedup":     *dedupFlag,
				"qos":       *qosFlag,
				"qosfloors": *qosFloors,
				"seed":      *seedFlag,
			},
			"rows": rows,
		}, "", "  ")
		if err != nil {
			return err
		}
		path := fmt.Sprintf("BENCH_%s.json", name)
		if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("    wrote %s\n", path)
		return nil
	}

	// The experiment registry: -exp values resolve here, and an unknown
	// name is rejected with this list instead of silently doing nothing.
	type expDef struct {
		name string
		fn   func() error
	}
	var defs []expDef
	register := func(name string, fn func() error) {
		defs = append(defs, expDef{name, fn})
	}

	register("fig2", func() error {
		rows, err := experiment.Fig2Retention(s)
		if err != nil {
			return err
		}
		fmt.Println("Figure 2 — data retention time (days) on a 512 GiB SSD, 7% OP, 1 TiB remote budget")
		fmt.Print(experiment.RenderFig2(rows))
		return persist("fig2", rows)
	})

	register("table1", func() error {
		cells, err := experiment.DefenseMatrix(s)
		if err != nil {
			return err
		}
		fmt.Println("Table 1 — defense matrix (attack replays; recovery graded none/partial/full)")
		fmt.Print(experiment.RenderDefenseMatrix(cells))
		return persist("table1", cells)
	})

	register("perf", func() error {
		rows, err := experiment.PerfOverhead(s, []string{"hm", "src", "usr", "web"})
		if err != nil {
			return err
		}
		fmt.Println("Claim P1 — storage performance overhead (trace-paced replay)")
		fmt.Print(experiment.RenderPerf(rows))
		return persist("perf", rows)
	})

	register("lifetime", func() error {
		rows, err := experiment.LifetimeWAF(s, []string{"hm", "src", "usr", "web"})
		if err != nil {
			return err
		}
		fmt.Println("Claim P2 — write amplification / device lifetime")
		fmt.Print(experiment.RenderLifetime(rows))
		return persist("lifetime", rows)
	})

	register("recovery-speed", func() error {
		rows, err := experiment.RecoverySpeed(s, []int{20, 40, 80})
		if err != nil {
			return err
		}
		fmt.Println("Claim P3 — post-attack data recovery speed (single device)")
		fmt.Print(experiment.RenderRecovery(rows))
		return persist("recovery-speed", rows)
	})

	register("forensics", func() error {
		rows, err := experiment.ForensicsSpeed(s, []int{5000, 20000, 50000})
		if err != nil {
			return err
		}
		fmt.Println("Claim P4 — trusted evidence chain construction")
		fmt.Print(experiment.RenderForensics(rows))
		return persist("forensics", rows)
	})

	register("offload", func() error {
		rows, err := experiment.OffloadCost(s, []string{"hm", "src", "email"})
		if err != nil {
			return err
		}
		fmt.Println("NVMe-oE offload cost and retention backlog")
		fmt.Print(experiment.RenderOffload(rows))
		return persist("offload", rows)
	})

	register("detection", func() error {
		rows, err := experiment.DetectionLatency(s)
		if err != nil {
			return err
		}
		fmt.Println("Offloaded detection — coverage and latency across six attack variants")
		fmt.Print(experiment.RenderDetection(rows))
		return persist("detection", rows)
	})

	register("batch", func() error {
		rows, err := experiment.BatchReplay(s, []string{"hm", "src", "web"})
		if err != nil {
			return err
		}
		fmt.Println("Batched datapath — per-op vs submission-batch replay (wall = host overhead, sim = channel parallelism)")
		fmt.Print(experiment.RenderBatchReplay(rows))
		return persist("batch", rows)
	})

	register("fleet", func() error {
		res, err := experiment.Fleet(s, *fleetDevices, *fleetServers)
		if err != nil {
			return err
		}
		if *fleetServers > 1 {
			fmt.Printf("Fleet — %d devices over %d ingest servers: consistent-hash placement, injected failover, scaling curve\n",
				*fleetDevices, *fleetServers)
		} else {
			fmt.Printf("Fleet — %d devices, one server: async offload pipeline, sharded ingest, streaming detection\n", *fleetDevices)
		}
		fmt.Print(experiment.RenderFleet(res))
		return persist("fleet", res)
	})

	register("retention", func() error {
		rows, err := experiment.Retention(s, *fleetDevices, backends)
		if err != nil {
			return err
		}
		fmt.Printf("Retention tiers — fleet workload vs storage backends %v (compressed offload wire)\n", backends)
		fmt.Print(experiment.RenderRetention(rows))
		return persist("retention", rows)
	})

	register("attacks", func() error {
		rows, err := experiment.AttackValidation(s)
		if err != nil {
			return err
		}
		fmt.Println("Ransomware 2.0 validation — attacks vs. an unprotected LocalSSD")
		fmt.Print(experiment.RenderValidation(rows))
		return persist("attacks", rows)
	})

	register("recovery", func() error {
		res, err := experiment.FleetRecovery(s, *fleetDevices, *dedupFlag,
			netsim.Config{Floors: floors, FIFO: !*qosFlag})
		if err != nil {
			return err
		}
		mode := "full-image"
		if *dedupFlag {
			mode = "dedup + checkpoint-delta"
		}
		fmt.Printf("Fleet recovery — power-cycle %d devices, concurrent %s streamed restore from one server\n", *fleetDevices, mode)
		fmt.Print(experiment.RenderFleetRecovery(res))
		return persist("recovery", res)
	})

	register("dedup", func() error {
		res, err := experiment.DedupRestore(s, *fleetDevices)
		if err != nil {
			return err
		}
		fmt.Printf("Dedup restore — content-addressed store + checkpoint-anchored delta vs full-image, %d measured devices + scaling model\n",
			*fleetDevices)
		fmt.Print(experiment.RenderDedup(res))
		return persist("dedup", res)
	})

	register("datapath", func() error {
		ingestDevices := 64
		if *short {
			ingestDevices = 8
		}
		res, err := experiment.Datapath(s, *fleetDevices, ingestDevices)
		if err != nil {
			return err
		}
		fmt.Printf("Datapath — allocation-tracked hot loops + encode-worker vs inline-encode fleet replay (%d devices) + %d-device server ingest\n",
			*fleetDevices, ingestDevices)
		fmt.Print(experiment.RenderDatapath(res))
		return persist("datapath", res)
	})

	register("qos", func() error {
		qosDevices := *fleetDevices
		if !explicit["devices"] && !*short {
			qosDevices = 64 // the contention story needs a fleet-sized storm
		}
		res, err := experiment.QoSRun(s, qosDevices, netsim.Config{Floors: floors})
		if err != nil {
			return err
		}
		fmt.Printf("Shared-NIC QoS — %d-device restore storm vs steady-state offload + lifecycle lanes, strict-priority vs FIFO\n",
			res.Devices)
		fmt.Print(experiment.RenderQoS(res))
		return persist("qos", res)
	})

	register("soak", func() error {
		devices, servers, waves := *fleetDevices, *fleetServers, 16
		if !explicit["devices"] && !*short {
			devices = 16 // the full horizon wants a real fleet
		}
		if !explicit["servers"] {
			servers = 3
		}
		if *short {
			waves = 3
			if !explicit["devices"] {
				devices = 3
			}
		}
		res, err := experiment.Soak(s, experiment.SoakOptions{
			Devices: devices, Servers: servers, Waves: waves,
			Seed: *seedFlag, Short: *short,
		})
		fmt.Printf("Chaos soak — %d devices / %d servers / %d waves under seeded fault injection with continuous invariants\n",
			devices, servers, waves)
		// A failed soak still renders and persists its ledger: the report
		// (and the reproducing seed in err) is the debugging artifact.
		if res != nil {
			fmt.Print(experiment.RenderSoak(res))
			if perr := persist("soak", res); perr != nil && err == nil {
				err = perr
			}
		}
		return err
	})

	register("ingest", func() error {
		res, err := experiment.Ingest(s, *fleetDevices)
		if err != nil {
			return err
		}
		fmt.Printf("Server ingest — %d pipelined sessions vs pooled decode lane + sharded detection, with NIC saturation model\n",
			res.Measured.Devices)
		fmt.Print(experiment.RenderIngest(res))
		return persist("ingest", res)
	})

	if *exp != "all" {
		names := make([]string, 0, len(defs))
		known := false
		for _, d := range defs {
			names = append(names, d.name)
			known = known || d.name == *exp
		}
		if !known {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (registered: all, %s)\n",
				*exp, strings.Join(names, ", "))
			return 2
		}
	}
	for _, d := range defs {
		if *exp != "all" && *exp != d.name {
			continue
		}
		start := time.Now()
		fmt.Printf("==> %s\n", d.name)
		if err := d.fn(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", d.name, err)
			return 1
		}
		fmt.Printf("    (%s)\n\n", time.Since(start).Round(time.Millisecond))
	}
	return 0
}
