// Command attacksim replays one ransomware attack against one system and
// walks through the full incident lifecycle: seeding a user corpus, benign
// traffic, the attack, remote detection, forensic analysis, and (on RSSD)
// recovery. It prints the investigation report the forensic analyzer
// produces.
//
//	attacksim -attack trimming-attack -system RSSD
//	attacksim -attack gc-attack -system LocalSSD
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/attack"
	"repro/internal/detect"
	"repro/internal/experiment"
	"repro/internal/forensic"
	"repro/internal/recovery"
	"repro/internal/simclock"
)

func main() {
	atkName := flag.String("attack", "encryptor", "attack model (encryptor, gc-attack, timing-attack, trimming-attack)")
	system := flag.String("system", "RSSD", "system under test (RSSD, LocalSSD)")
	files := flag.Int("files", 40, "user files to seed")
	seed := flag.Int64("seed", 1, "deterministic run seed")
	flag.Parse()

	if err := run(*atkName, *system, *files, *seed); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(atkName, system string, files int, seed int64) error {
	s := experiment.FullScale()
	s.SeedFiles = files
	rng := rand.New(rand.NewSource(seed))

	var atk attack.Attack
	key := [32]byte{0xFE, 0xED}
	switch atkName {
	case "encryptor":
		atk = &attack.Encryptor{Key: key}
	case "gc-attack":
		atk = &attack.GCAttack{Key: key, Rounds: 2}
	case "timing-attack":
		atk = &attack.TimingAttack{Key: key, FilesPerBurst: 2, BurstInterval: 24 * simclock.Hour, CoverOpsPerOp: 3}
	case "trimming-attack":
		atk = &attack.TrimmingAttack{Key: key}
	default:
		return fmt.Errorf("unknown attack %q", atkName)
	}

	if system == "LocalSSD" {
		rig := experiment.NewBaselineRig(s, nil, nil)
		if _, _, err := attack.Seed(rig.FS, rng, files, s.MaxFilePages); err != nil {
			return err
		}
		rep, err := atk.Run(rig.FS, rng)
		if err != nil {
			return err
		}
		fmt.Println(rep)
		fmt.Printf("LocalSSD has no retention, detection, or forensics: %d stale pages already physically erased, victim data unrecoverable.\n",
			rig.FTL.Stats().StaleErased)
		return nil
	}
	if system != "RSSD" {
		return fmt.Errorf("unknown system %q", system)
	}

	rig, err := experiment.NewRSSDRig(s)
	if err != nil {
		return err
	}
	defer rig.Client.Close()

	// Offloaded detection watches the remote store.
	engine := detect.NewEngine(detect.DefaultConfig())
	engine.Attach(rig.Store)
	engine.OnAlert = func(a detect.Alert) { fmt.Printf("[detector] %s\n", a) }

	fmt.Printf("Seeding %d user files and benign traffic...\n", files)
	if _, _, err := attack.Seed(rig.FS, rng, files, s.MaxFilePages); err != nil {
		return err
	}
	if err := attack.RunBenign(rig.FS, rng, 200, simclock.Minute); err != nil {
		return err
	}

	fmt.Printf("Launching %s...\n", atkName)
	rep, err := atk.Run(rig.FS, rng)
	if err != nil {
		return err
	}
	fmt.Println(rep)

	// Flush the tail of the log so the analyst sees everything.
	if _, err := rig.Dev.OffloadNow(rig.FS.Clock().Now()); err != nil {
		return err
	}
	for _, a := range engine.Alerts() {
		fmt.Printf("[detector] alert on record: %s\n", a)
	}

	an := forensic.NewAnalyzer(rig.Dev, rig.Client)
	ev, err := an.Timeline()
	if err != nil {
		return err
	}
	win, err := an.AttackWindow(ev, rig.Dev.Log().NextSeq())
	if err != nil {
		return err
	}
	if err := an.WriteReport(os.Stdout, ev, win); err != nil {
		return err
	}

	eng := recovery.NewEngine(rig.Dev, rig.Client, recovery.Options{Verify: true})
	_, rrep, err := eng.RestoreWindow(win, rig.FS.Clock().Now())
	if err != nil {
		return err
	}
	fmt.Printf("\n%s\n", rrep)
	if rrep.Complete() {
		fmt.Println("All victim pages restored to their pre-attack contents. Zero data loss.")
	}
	return nil
}
