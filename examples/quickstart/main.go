// Quickstart: stand up an RSSD with an in-process remote server, do some
// I/O, and look at what the device retains.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/remote"
	"repro/internal/simclock"
)

func main() {
	// 1. Remote side: a log store over an in-memory object store, served
	// to devices that present the enrollment key.
	psk := []byte("quickstart-psk-0123456789abcdef0")
	store := remote.NewStore(remote.NewMemStore())
	server := remote.NewServer(store, psk)

	// 2. Device side: an RSSD wired to the server over an in-process
	// NVMe-oE session (use examples/remote-offload for real TCP).
	client, err := remote.Loopback(server, psk, 1)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	cfg := core.DefaultConfig()
	dev := core.New(cfg, client)
	fmt.Printf("RSSD ready: %d logical pages x %d bytes\n", dev.LogicalPages(), dev.PageSize())

	// 3. Ordinary block I/O. Every operation lands in the hash-chained
	// operation log; every overwritten or trimmed version is retained.
	at := simclock.Time(0)
	page := func(s string) []byte {
		p := make([]byte, dev.PageSize())
		copy(p, s)
		return p
	}
	at, _ = dev.Write(0, page("v1: the quarterly report"), at)
	at, _ = dev.Write(0, page("v2: the quarterly report, revised"), at)
	at, _ = dev.Trim(0, at) // even trim does not destroy data on RSSD

	data, at, _ := dev.Read(0, at)
	fmt.Printf("current content after trim: %q (zeroes)\n", string(data[:2]))

	// 4. Both old versions are still there.
	for _, before := range []uint64{1, 2, 3} {
		v, _, ok, err := dev.VersionBefore(0, before, at)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("content just before op %d (exists=%v): %.34q\n", before, ok, string(v))
	}

	// 5. Drain retention to the remote server and look at the footprint.
	if _, err := dev.OffloadNow(at); err != nil {
		log.Fatal(err)
	}
	st := dev.Stats()
	rs := store.DeviceStats(1)
	fmt.Printf("device: %d writes, %d trims, %d segments offloaded\n",
		st.HostWrites, st.HostTrims, st.OffloadSegments)
	fmt.Printf("remote: %d log entries, %d retained versions, %d bytes\n",
		rs.Entries, rs.Versions, rs.PageBytes)
	fmt.Printf("log chain head sequence: %d (tamper-evident, SHA-256 chained)\n",
		dev.Log().NextSeq())
}
