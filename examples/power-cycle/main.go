// Power cycle: write history, shut down cleanly, reopen the same flash
// array with a fresh firmware instance, and show that the live state, the
// full version history, and the evidence chain all survive — then do it
// again with a crash and show the honest rollback to the last durable
// point.
//
//	go run ./examples/power-cycle
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/remote"
	"repro/internal/simclock"
)

func main() {
	psk := []byte("power-cycle-psk-0123456789abcdef")
	store := remote.NewStore(remote.NewMemStore())
	server := remote.NewServer(store, psk)
	client, err := remote.Loopback(server, psk, 1)
	if err != nil {
		log.Fatal(err)
	}

	cfg := core.DefaultConfig()
	dev := core.New(cfg, client)
	at := simclock.Time(0)
	page := func(s string) []byte {
		p := make([]byte, dev.PageSize())
		copy(p, s)
		return p
	}

	fmt.Println("Generation 1: writing three versions of page 0, trimming page 1...")
	at, _ = dev.Write(0, page("v1"), at)
	at, _ = dev.Write(0, page("v2"), at)
	at, _ = dev.Write(0, page("v3"), at)
	at, _ = dev.Write(1, page("doomed"), at)
	at, _ = dev.Trim(1, at)

	// Clean shutdown: drain retention and the log tail.
	if _, err := dev.OffloadNow(at); err != nil {
		log.Fatal(err)
	}
	nand := dev.FTL().Device() // the flash array outlives the firmware
	client.Close()

	fmt.Println("Power cycle. Reopening the same flash with fresh firmware...")
	client2, err := remote.Loopback(server, psk, 1)
	if err != nil {
		log.Fatal(err)
	}
	dev2, err := core.Reopen(cfg, nand, client2)
	if err != nil {
		log.Fatal(err)
	}

	cur, at2, _ := dev2.Read(0, at)
	fmt.Printf("  live state:   page 0 = %q, page 1 trimmed reads zeroes\n", string(cur[:2]))
	for seq := uint64(1); seq <= 3; seq++ {
		v, _, _, _ := dev2.VersionBefore(0, seq, at2)
		fmt.Printf("  history:      version before op %d = %q\n", seq, string(v[:2]))
	}
	fmt.Printf("  chain:        resumed at seq %d, splicing onto the remote head\n", dev2.Log().NextSeq())

	fmt.Println("\nGeneration 2: one write, then CRASH without offloading...")
	at2, _ = dev2.Write(0, page("v4-uncommitted"), at2)
	client2.Close() // the log entry for v4 dies in device RAM

	client3, err := remote.Loopback(server, psk, 1)
	if err != nil {
		log.Fatal(err)
	}
	defer client3.Close()
	dev3, err := core.Reopen(cfg, dev2.FTL().Device(), client3)
	if err != nil {
		log.Fatal(err)
	}
	cur, _, _ = dev3.Read(0, at2)
	fmt.Printf("  after crash:  page 0 = %q (rolled back to the last durable state)\n", string(cur[:2]))
	fmt.Println("  a journaled rollback, not silent corruption: the chain stays verifiable")
}
