// Forensics: build a history, let ransomware strike, and produce the
// trusted post-attack analysis report — then demonstrate tamper evidence
// by showing that altered history cannot be re-injected into the remote
// store.
//
//	go run ./examples/forensics
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"repro/internal/attack"
	"repro/internal/experiment"
	"repro/internal/forensic"
	"repro/internal/oplog"
	"repro/internal/simclock"
)

func main() {
	rig, err := experiment.NewRSSDRig(experiment.FullScale())
	if err != nil {
		log.Fatal(err)
	}
	defer rig.Client.Close()

	rng := rand.New(rand.NewSource(7))
	if _, _, err := attack.Seed(rig.FS, rng, 30, 4); err != nil {
		log.Fatal(err)
	}
	if err := attack.RunBenign(rig.FS, rng, 400, simclock.Minute); err != nil {
		log.Fatal(err)
	}
	if _, err := (&attack.TimingAttack{
		Key: [32]byte{0xBA, 0xD}, FilesPerBurst: 2,
		BurstInterval: 18 * simclock.Hour, CoverOpsPerOp: 4,
	}).Run(rig.FS, rng); err != nil {
		log.Fatal(err)
	}
	if _, err := rig.Dev.OffloadNow(rig.FS.Clock().Now()); err != nil {
		log.Fatal(err)
	}

	an := forensic.NewAnalyzer(rig.Dev, rig.Client)
	ev, err := an.Timeline()
	if err != nil {
		log.Fatal(err)
	}
	win, err := an.AttackWindow(ev, rig.Dev.Log().NextSeq())
	if err != nil {
		log.Fatal(err)
	}
	if err := an.WriteReport(os.Stdout, ev, win); err != nil {
		log.Fatal(err)
	}

	// Drill into one victim page's history.
	if len(win.Victims) > 0 {
		lpn := win.Victims[0]
		fmt.Printf("\nPer-page history of victim LPN %d:\n", lpn)
		for _, e := range an.PageHistory(ev, lpn) {
			fmt.Printf("  seq %-6d %-8s at %-16v entropy %.2f\n", e.Seq, e.Kind, e.At, e.Entropy)
		}
	}

	// Tamper evidence: an attacker who compromises the host cannot
	// rewrite offloaded history. Rewriting an entry breaks the SHA-256
	// chain, which both VerifyChain and the remote ingest path reject.
	fmt.Println("\nTamper-evidence demo:")
	tampered := append([]oplog.Entry(nil), ev.Entries...)
	tampered[len(tampered)/2].LPN = 424242 // rewrite history
	if err := oplog.VerifyChain(tampered, [32]byte{}); err != nil {
		fmt.Printf("  altered timeline rejected: %v\n", err)
	} else {
		fmt.Println("  !!! tampering was not detected")
	}
}
