// Ransomware recovery, end to end: seed a user corpus, run benign traffic,
// launch the trimming attack (the one that defeats overwrite-retention
// defenses), detect it remotely, reconstruct the attack window, and
// restore every victim page with zero data loss.
//
//	go run ./examples/ransomware-recovery
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"repro/internal/attack"
	"repro/internal/detect"
	"repro/internal/experiment"
	"repro/internal/forensic"
	"repro/internal/recovery"
	"repro/internal/simclock"
)

func main() {
	rig, err := experiment.NewRSSDRig(experiment.FullScale())
	if err != nil {
		log.Fatal(err)
	}
	defer rig.Client.Close()

	// Detection runs on the remote server, fed by offloaded segments.
	engine := detect.NewEngine(detect.DefaultConfig())
	engine.Attach(rig.Store)
	engine.OnAlert = func(a detect.Alert) { fmt.Printf("\n*** %s ***\n\n", a) }

	rng := rand.New(rand.NewSource(2024))
	fmt.Println("Seeding 40 user files + a day of benign traffic...")
	if _, _, err := attack.Seed(rig.FS, rng, 40, 5); err != nil {
		log.Fatal(err)
	}
	if err := attack.RunBenign(rig.FS, rng, 300, simclock.Minute); err != nil {
		log.Fatal(err)
	}

	// Snapshot the corpus — contents and physical layout — so we can
	// grade the restoration afterwards. (A real victim has no snapshot;
	// recovery needs none. This is purely the example's scorecard.)
	contents := map[string][]byte{}
	layout := map[string][]uint64{}
	for _, name := range rig.FS.List() {
		data, _ := rig.FS.ReadFile(name)
		contents[name] = data
		pages, _ := rig.FS.Extents(name)
		layout[name] = pages
	}

	fmt.Println("Launching trimming attack (encrypt to new files, trim the originals)...")
	rep, err := (&attack.TrimmingAttack{Key: [32]byte{13, 37}}).Run(rig.FS, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rep)

	// Flush the log tail so the remote analyst sees the whole history.
	if _, err := rig.Dev.OffloadNow(rig.FS.Clock().Now()); err != nil {
		log.Fatal(err)
	}

	an := forensic.NewAnalyzer(rig.Dev, rig.Client)
	ev, err := an.Timeline()
	if err != nil {
		log.Fatal(err)
	}
	win, err := an.AttackWindow(ev, rig.Dev.Log().NextSeq())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Forensics: %s\n", win)

	eng := recovery.NewEngine(rig.Dev, rig.Client, recovery.Options{Verify: true})
	at, rrep, err := eng.RestoreWindow(win, rig.FS.Clock().Now())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rrep)

	// Grade: every page of every original file holds its plaintext again.
	ps := rig.Dev.PageSize()
	restoredFiles := 0
	for name, want := range contents {
		ok := true
		for i, lpn := range layout[name] {
			got, _, err := rig.Dev.Read(lpn, at)
			if err != nil {
				ok = false
				break
			}
			expect := make([]byte, ps)
			if off := i * ps; off < len(want) {
				copy(expect, want[off:])
			}
			if !bytes.Equal(got, expect) {
				ok = false
				break
			}
		}
		if ok {
			restoredFiles++
		}
	}
	fmt.Printf("Files fully restored at block level: %d / %d\n", restoredFiles, len(contents))
	if rrep.Complete() {
		fmt.Println("Zero data loss: every victim page verified against the log's content hashes.")
	}
}
