// Remote offload over real TCP: start an NVMe-oE storage server on
// localhost backed by an on-disk object store, connect an RSSD to it over
// a TCP socket, push retention traffic through, then reload the store
// from disk and verify the evidence chain survived the round trip.
//
//	go run ./examples/remote-offload
package main

import (
	"fmt"
	"log"
	"math/rand"
	"net"
	"os"
	"path/filepath"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/host"
	"repro/internal/remote"
	"repro/internal/simclock"
)

func main() {
	psk := []byte("remote-offload-psk-0123456789abc")
	dir := filepath.Join(os.TempDir(), "rssd-remote-offload")
	os.RemoveAll(dir)

	// Server: DirStore persistence (the Amazon S3 stand-in), TCP listener.
	blobs, err := remote.NewDirStore(dir)
	if err != nil {
		log.Fatal(err)
	}
	store := remote.NewStore(blobs)
	server := remote.NewServer(store, psk)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go server.Serve(ln)
	fmt.Printf("NVMe-oE storage server listening on %s, blobs in %s\n", ln.Addr(), dir)

	// Device: dial the server over TCP and authenticate with the PSK.
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	client, err := remote.Dial(conn, psk, 77)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	cfg := core.DefaultConfig()
	cfg.DeviceID = 77
	rig := core.New(cfg, client)
	fs := host.NewFlatFS(rig, simclock.NewClock())

	rng := rand.New(rand.NewSource(99))
	if _, _, err := attack.Seed(fs, rng, 30, 4); err != nil {
		log.Fatal(err)
	}
	if err := attack.RunBenign(fs, rng, 500, simclock.Minute); err != nil {
		log.Fatal(err)
	}
	if _, err := rig.OffloadNow(fs.Clock().Now()); err != nil {
		log.Fatal(err)
	}

	st := rig.Stats()
	rs := store.DeviceStats(77)
	fmt.Printf("offloaded over TCP: %d segments, %d pages, %d log entries\n",
		st.OffloadSegments, st.OffloadPages, rs.Entries)

	// Durability: rebuild the index from the on-disk blobs alone and
	// verify the chain end to end.
	fresh := remote.NewStore(blobs)
	if err := fresh.Reload(); err != nil {
		log.Fatalf("reload from disk failed: %v", err)
	}
	h1, h2 := store.Head(77), fresh.Head(77)
	if h1 != h2 {
		log.Fatalf("reloaded head %+v != live head %+v", h2, h1)
	}
	fmt.Printf("reloaded %d entries from disk; chain head matches (seq %d)\n",
		fresh.DeviceStats(77).Entries, h2.NextSeq)
	fmt.Println("evidence chain survives server restarts: blobs are the truth, indexes are cache")
}
